// Command vpnmload is a closed-loop load generator for vpnmd: it keeps
// a configurable window of pipelined requests in flight against a live
// server, then reports requests per second and the completion latency
// distribution in interface cycles — which, this being a virtually
// pipelined memory, must be a single spike at exactly D. Any completion
// whose cycle stamps disagree with the server's advertised D counts as
// a fixed-D violation and fails the run, so vpnmload doubles as the
// end-to-end verifier for the service's headline invariant.
//
//	vpnmd -addr :7450 &
//	vpnmload -addr localhost:7450 -duration 5s -window 512
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"os/signal"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/recovery"
	"repro/internal/telemetry"
)

// summary is the -json run report: one object on stdout, machine-ready.
type summary struct {
	Requests        uint64                      `json:"requests"`
	Reads           uint64                      `json:"reads"`
	Writes          uint64                      `json:"writes"`
	ElapsedSeconds  float64                     `json:"elapsed_seconds"`
	ReqPerSecond    float64                     `json:"req_per_second"`
	Cycles          uint64                      `json:"cycles"`
	ReqPerCycle     float64                     `json:"req_per_cycle"`
	Delay           uint64                      `json:"delay_cycles"`
	LatencyP50      uint64                      `json:"latency_p50_cycles"`
	LatencyP99      uint64                      `json:"latency_p99_cycles"`
	LatencyP100     uint64                      `json:"latency_p100_cycles"`
	Completions     uint64                      `json:"completions"`
	Uncorrectable   uint64                      `json:"uncorrectable"`
	Retries         uint64                      `json:"retries"`
	Drops           uint64                      `json:"drops"`
	Violations      uint64                      `json:"fixed_d_violations"`
	DeadlineExpired uint64                      `json:"deadline_exceeded"`
	Reconnects      uint64                      `json:"reconnects"`
	Retransmits     uint64                      `json:"retransmits"`
	StallsSurfaced  uint64                      `json:"stalls_surfaced"`
	ChannelBusy     uint64                      `json:"channel_busy_retries"`
	LatencyCycles   map[uint64]uint64           `json:"latency_histogram_cycles"`
	IssueRatePerSec telemetry.HistogramSnapshot `json:"issue_rate_per_second"`
}

func main() {
	var (
		addr       = flag.String("addr", "localhost:7450", "vpnmd address")
		duration   = flag.Duration("duration", 5*time.Second, "load duration")
		window     = flag.Int("window", 512, "in-flight request window (closed loop)")
		batch      = flag.Int("batch", 256, "max requests per frame")
		writeFrac  = flag.Float64("writefrac", 0.1, "fraction of requests that are writes")
		addrSpace  = flag.Uint64("addrspace", 1<<20, "address space to spray requests over")
		seed       = flag.Uint64("seed", 1, "workload PRNG seed")
		policy     = flag.String("policy", "retry", "stall policy: retry | drop | backpressure")
		timeout    = flag.Duration("timeout", time.Minute, "overall run budget; on expiry the run exits nonzero with a partial ledger dump (0 disables)")
		tenant     = flag.String("tenant", "", "tenant name presented in the Hello (the server-side QoS principal)")
		session    = flag.Uint64("session", 0, "nonzero session id: reconnect with backoff on transport failure and resume the in-flight window")
		reqTimeout = flag.Duration("reqtimeout", 0, "per-request deadline; expiries resolve locally as ErrDeadlineExceeded (0 disables)")
		jsonOut    = flag.Bool("json", false, "emit the final run summary as one JSON object on stdout (human output moves to stderr)")
		poolchk    = flag.Bool("poolcheck", false, "arm the client frame-buffer pool's leak/double-put detector; the run exits nonzero if the pool is dirty after the final flush")
	)
	flag.Parse()

	// With -json, stdout carries exactly one JSON object; everything a
	// human reads goes to stderr so pipelines stay parseable.
	human := os.Stdout
	if *jsonOut {
		human = os.Stderr
	}

	pol, err := recovery.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	c, err := client.Dial(*addr, client.Config{
		Window:         *window,
		MaxBatch:       *batch,
		Policy:         pol,
		Tenant:         *tenant,
		SessionID:      *session,
		RequestTimeout: *reqTimeout,
		PoolCheck:      *poolchk,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	// fatalPartial is the -timeout escape hatch: whatever the ledger
	// holds right now goes out before the nonzero exit, so a wedged
	// server still yields a diagnosable report instead of a hung pipe.
	fatalPartial := func(err error) {
		ctr := c.Counters()
		fmt.Fprintln(os.Stderr, "vpnmload:", err)
		fmt.Fprintf(os.Stderr, "vpnmload: PARTIAL ledger: issued=%d completions=%d accepted-writes=%d drops=%d stalls=%d retries=%d deadline-expiries=%d reconnects=%d retransmits=%d fixed-D-violations=%d\n",
			ctr.Issued, ctr.Completions, ctr.AcceptedWrites, ctr.Drops, ctr.Stalls.Total(),
			ctr.Retries, ctr.DeadlineExceeded, ctr.Reconnects, ctr.Retransmits, ctr.LatencyViolations)
		if *jsonOut {
			json.NewEncoder(os.Stdout).Encode(map[string]any{ //nolint:errcheck // already failing
				"partial": true, "error": err.Error(), "counters": ctr,
			})
		}
		os.Exit(1)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	// The overall budget bounds every blocking call — issue (which can
	// park on the window), flush and stats — so a server that stops
	// completing cannot hang the run.
	var wall time.Time
	runCtx := ctx
	if *timeout > 0 {
		wall = time.Now().Add(*timeout)
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithDeadline(ctx, wall)
		defer tcancel()
	}
	// budgeted derives a per-call context that never outlives the wall.
	budgeted := func(d time.Duration) (context.Context, context.CancelFunc) {
		if !wall.IsZero() {
			if r := time.Until(wall); r < d {
				d = r
			}
		}
		if d <= 0 {
			return context.WithCancel(runCtx) // already expired; fail fast
		}
		return context.WithTimeout(context.Background(), d)
	}

	// The opening Stats call teaches the client the server's D and arms
	// its per-completion fixed-D check.
	sctx, scancel := budgeted(30 * time.Second)
	before, err := c.Stats(sctx)
	scancel()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(human, "vpnmload: server D=%d cycles, %d channels, cycle=%d\n",
		before.Delay, before.Channels, before.Cycle)

	// Latency histogram in cycles, owned by the receive goroutine (all
	// callbacks run there); read only after Flush has quiesced it.
	hist := make(map[uint64]uint64)
	var flagged, dropped uint64
	cb := func(comp client.Completion) {
		if comp.Err != nil {
			if comp.Err == core.ErrUncorrectable {
				flagged++
				hist[comp.DeliveredAt-comp.IssuedAt]++
			} else {
				dropped++
			}
			return
		}
		hist[comp.DeliveredAt-comp.IssuedAt]++
	}

	rng := rand.New(rand.NewPCG(*seed, 0x9e3779b97f4a7c15))
	word := make([]byte, 8)
	var issued uint64
	// Issue-rate histogram: requests per second, sampled over ~100ms
	// windows — the client-side view of how evenly load was offered.
	issueRate := telemetry.NewHistogram(telemetry.ExponentialBounds(1000, 2, 16))
	var windowIssued uint64
	windowStart := time.Now()
	start := time.Now()
	deadline := start.Add(*duration)
	for {
		// Check the clock (and the signal context) every 1024 requests.
		if issued%1024 == 0 {
			now := time.Now()
			if w := now.Sub(windowStart); w >= 100*time.Millisecond {
				issueRate.Observe(uint64(float64(windowIssued) / w.Seconds()))
				windowIssued = 0
				windowStart = now
			}
			if now.After(deadline) || runCtx.Err() != nil {
				break
			}
		}
		a := rng.Uint64N(*addrSpace)
		if *writeFrac > 0 && rng.Float64() < *writeFrac {
			for i := range word {
				word[i] = byte(rng.Uint64())
			}
			err = c.Write(runCtx, a, word)
		} else {
			err = c.Read(runCtx, a, cb)
		}
		if err != nil {
			if runCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
				fatalPartial(fmt.Errorf("overall -timeout %v expired with the issue window wedged", *timeout))
			}
			if runCtx.Err() != nil {
				break
			}
			fatal(err)
		}
		issued++
		windowIssued++
	}
	if runCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
		fatalPartial(fmt.Errorf("overall -timeout %v expired during issue", *timeout))
	}
	fctx, fcancel := budgeted(30 * time.Second)
	err = c.Flush(fctx)
	fcancel()
	elapsed := time.Since(start)
	if err != nil {
		fatalPartial(fmt.Errorf("flush: %w", err))
	}
	sctx, scancel = budgeted(30 * time.Second)
	after, err := c.Stats(sctx)
	scancel()
	if err != nil {
		fatalPartial(fmt.Errorf("stats: %w", err))
	}

	ctr := c.Counters()
	cycles := after.Cycle - before.Cycle
	rate := float64(issued) / elapsed.Seconds()
	fmt.Fprintf(human, "vpnmload: %d requests (%d reads, %d writes) in %.2fs = %.0f req/s\n",
		issued, ctr.Reads, ctr.Writes, elapsed.Seconds(), rate)
	fmt.Fprintf(human, "vpnmload: server advanced %d cycles (%.3f req/cycle), %d stall(s) surfaced, %d channel-busy retried\n",
		cycles, float64(issued)/float64(max(cycles, 1)), after.Stalls-before.Stalls, after.Busy-before.Busy)
	p50, p99, p100 := percentiles(hist)
	fmt.Fprintf(human, "vpnmload: latency cycles p50=%d p99=%d p100=%d (D=%d)\n", p50, p99, p100, after.Delay)
	printLatencyHistogram(human, hist)
	irs := issueRate.Snapshot()
	if irs.Count > 0 {
		fmt.Fprintf(human, "vpnmload: issue rate per 100ms window: p50<=%d/s p99<=%d/s over %d windows\n",
			irs.Quantile(0.5), irs.Quantile(0.99), irs.Count)
	}
	fmt.Fprintf(human, "vpnmload: completions=%d uncorrectable=%d retries=%d drops=%d deadline-expiries=%d reconnects=%d fixed-D violations=%d\n",
		ctr.Completions, flagged, ctr.Retries, dropped, ctr.DeadlineExceeded, ctr.Reconnects, ctr.LatencyViolations)
	if *poolchk {
		if err := c.PoolClean(); err != nil {
			fatalPartial(fmt.Errorf("pool: %w", err))
		}
		ps := c.PoolStats()
		fmt.Fprintf(human, "vpnmload: pool clean: %d gets, %d misses, 0 live\n", ps.Gets, ps.Misses)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary{
			Requests:        issued,
			Reads:           ctr.Reads,
			Writes:          ctr.Writes,
			ElapsedSeconds:  elapsed.Seconds(),
			ReqPerSecond:    rate,
			Cycles:          cycles,
			ReqPerCycle:     float64(issued) / float64(max(cycles, 1)),
			Delay:           after.Delay,
			LatencyP50:      p50,
			LatencyP99:      p99,
			LatencyP100:     p100,
			Completions:     ctr.Completions,
			Uncorrectable:   flagged,
			Retries:         ctr.Retries,
			Drops:           dropped,
			Violations:      ctr.LatencyViolations,
			DeadlineExpired: ctr.DeadlineExceeded,
			Reconnects:      ctr.Reconnects,
			Retransmits:     ctr.Retransmits,
			StallsSurfaced:  after.Stalls - before.Stalls,
			ChannelBusy:     after.Busy - before.Busy,
			LatencyCycles:   hist,
			IssueRatePerSec: irs,
		}); err != nil {
			fatal(err)
		}
	}
	if ctr.LatencyViolations > 0 {
		fmt.Fprintln(os.Stderr, "vpnmload: FIXED-D INVARIANT VIOLATED")
		os.Exit(1)
	}
	fmt.Fprintln(human, "vpnmload: fixed-D invariant held for every completion")
}

// printLatencyHistogram dumps the cycle histogram, which for a healthy
// run is a single line: every completion at exactly D.
func printLatencyHistogram(w *os.File, hist map[uint64]uint64) {
	if len(hist) == 0 {
		return
	}
	keys := make([]uint64, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Fprintln(w, "vpnmload: latency histogram (cycles: completions):")
	for _, k := range keys {
		fmt.Fprintf(w, "vpnmload:   %6d: %d\n", k, hist[k])
	}
}

// percentiles walks the cycle histogram for p50/p99/p100.
func percentiles(hist map[uint64]uint64) (p50, p99, p100 uint64) {
	if len(hist) == 0 {
		return 0, 0, 0
	}
	keys := make([]uint64, 0, len(hist))
	var total uint64
	for k, n := range hist {
		keys = append(keys, k)
		total += n
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var cum uint64
	for _, k := range keys {
		cum += hist[k]
		if p50 == 0 && cum*2 >= total {
			p50 = k
		}
		if p99 == 0 && cum*100 >= total*99 {
			p99 = k
		}
	}
	return p50, p99, keys[len(keys)-1]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpnmload:", err)
	os.Exit(1)
}
