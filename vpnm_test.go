package vpnm_test

import (
	"errors"
	"testing"

	vpnm "repro"
)

// TestFacadeRoundTrip exercises the public API end to end: write, read,
// fixed-latency completion, stats.
func TestFacadeRoundTrip(t *testing.T) {
	ctrl, err := vpnm.New(vpnm.Config{HashSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Write(7, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ctrl.Tick()
	tag, err := ctrl.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	comps := ctrl.Flush()
	if len(comps) != 1 || comps[0].Tag != tag {
		t.Fatalf("completions: %+v", comps)
	}
	if got := comps[0].DeliveredAt - comps[0].IssuedAt; got != uint64(ctrl.Delay()) {
		t.Fatalf("latency %d != D %d", got, ctrl.Delay())
	}
	if string(comps[0].Data[:7]) != "payload" {
		t.Fatalf("data %q", comps[0].Data[:7])
	}
	st := ctrl.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Completions != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFacadeStallErrors(t *testing.T) {
	ctrl, err := vpnm.New(vpnm.Config{Banks: 4, QueueDepth: 1, DelayRows: 2, WordBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	var stall error
	for i := 0; i < 100 && stall == nil; i++ {
		if _, err := ctrl.Read(uint64(i * 131)); err != nil {
			stall = err
		}
		ctrl.Tick()
	}
	if stall == nil {
		t.Fatal("tiny controller never stalled")
	}
	if !vpnm.IsStall(stall) {
		t.Fatalf("IsStall(%v) = false", stall)
	}
	if !errors.Is(stall, vpnm.ErrStall) {
		t.Fatalf("%v does not wrap ErrStall", stall)
	}
}

// TestFacadeAllStallConditionsReachable proves every stall condition —
// and its specific sentinel — is reachable and identifiable through the
// public API alone. A regression test for the facade: ErrStallCounter
// used to be missing from the re-exports, leaving clients unable to
// distinguish counter stalls without importing internal packages.
func TestFacadeAllStallConditionsReachable(t *testing.T) {
	cases := []struct {
		name string
		cfg  vpnm.Config
		op   func(ctrl *vpnm.Controller, i int) error
		want error
	}{
		{
			name: "delay-buffer",
			cfg:  vpnm.Config{Banks: 1, DelayRows: 1, QueueDepth: 8, WordBytes: 8},
			op: func(ctrl *vpnm.Controller, i int) error {
				_, err := ctrl.Read(uint64(i)) // distinct rows, one-row DSB
				return err
			},
			want: vpnm.ErrStallDelayBuffer,
		},
		{
			name: "bank-queue",
			cfg:  vpnm.Config{Banks: 1, QueueDepth: 1, DelayRows: 16, AccessLatency: 100, WordBytes: 8},
			op: func(ctrl *vpnm.Controller, i int) error {
				_, err := ctrl.Read(uint64(i)) // distinct addrs defeat merging
				return err
			},
			want: vpnm.ErrStallBankQueue,
		},
		{
			name: "write-buffer",
			cfg:  vpnm.Config{Banks: 1, WriteBufferDepth: 1, QueueDepth: 8, AccessLatency: 100, WordBytes: 8},
			op: func(ctrl *vpnm.Controller, i int) error {
				return ctrl.Write(uint64(i), []byte{byte(i)})
			},
			want: vpnm.ErrStallWriteBuffer,
		},
		{
			name: "counter",
			cfg:  vpnm.Config{Banks: 1, CounterBits: 1, QueueDepth: 8, DelayRows: 8, AccessLatency: 100, WordBytes: 8},
			op: func(ctrl *vpnm.Controller, i int) error {
				_, err := ctrl.Read(0) // same row: merges until the counter saturates
				return err
			},
			want: vpnm.ErrStallCounter,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctrl, err := vpnm.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			var stall error
			for i := 0; i < 500 && stall == nil; i++ {
				stall = tc.op(ctrl, i)
				ctrl.Tick()
			}
			if stall == nil {
				t.Fatalf("%s stall never provoked", tc.name)
			}
			if !errors.Is(stall, tc.want) {
				t.Fatalf("stall %v is not %v", stall, tc.want)
			}
			if !errors.Is(stall, vpnm.ErrStall) || !vpnm.IsStall(stall) {
				t.Fatalf("%v does not identify as a generic stall", stall)
			}
		})
	}
}

// TestFacadeRetrier exercises the stall-recovery surface end to end
// through the public API: a parked request defers, resolves, and its
// completion still honors the fixed delay.
func TestFacadeRetrier(t *testing.T) {
	ctrl, err := vpnm.New(vpnm.Config{Banks: 1, QueueDepth: 1, DelayRows: 8, AccessLatency: 100, WordBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := vpnm.NewRetrier(ctrl, vpnm.RetrierConfig{Policy: vpnm.RetryNextCycle})
	var deferred error
	for i := 0; i < 200 && deferred == nil; i++ {
		if _, err := r.Read(uint64(i)); err != nil {
			deferred = err
		}
		r.Tick()
	}
	if !errors.Is(deferred, vpnm.ErrDeferred) {
		t.Fatalf("stall surfaced as %v want ErrDeferred", deferred)
	}
	if _, err := r.Read(12345); !errors.Is(err, vpnm.ErrRetrierBusy) {
		t.Fatalf("parked port returned %v want ErrRetrierBusy", err)
	}
	d := uint64(ctrl.Delay())
	for _, c := range r.Flush() {
		if c.DeliveredAt-c.IssuedAt != d {
			t.Fatalf("latency %d != D=%d under recovery", c.DeliveredAt-c.IssuedAt, d)
		}
	}
	rc := r.Counters()
	if rc.Stalls.Total() == 0 || rc.RetriedOK+rc.Drops == 0 {
		t.Fatalf("retrier counters %+v", rc)
	}
	// ErrUncorrectable is part of the facade but is not a stall: a
	// poisoned completion still arrives on time.
	if vpnm.IsStall(vpnm.ErrUncorrectable) {
		t.Fatal("ErrUncorrectable must not be a stall")
	}
}

func TestFacadeMTSHelpers(t *testing.T) {
	if mts := vpnm.DelayBufferMTS(32, 32, 160); mts < 1e10 {
		t.Fatalf("DelayBufferMTS = %.3g", mts)
	}
	if mts := vpnm.BankQueueMTS(32, 16, 20, 1.3); mts < 1e6 {
		t.Fatalf("BankQueueMTS = %.3g", mts)
	}
}

// TestAppsFacade exercises every application constructor through the
// public API surface.
func TestAppsFacade(t *testing.T) {
	mem, err := vpnm.New(vpnm.Config{Banks: 8, QueueDepth: 16, DelayRows: 64, WordBytes: 64, HashSeed: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Packet buffering.
	cb, err := vpnm.NewCellBuffer(mem, vpnm.PacketBufferConfig{Queues: 4, CellsPerQueue: 32, CellBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	pb := vpnm.NewPacketBuffer(cb)
	if err := pb.EnqueuePacket(1, make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	if err := pb.RequestDequeue(1); err != nil {
		t.Fatal(err)
	}
	pkts, ok := pb.Drain(1_000_000)
	if !ok || len(pkts) != 1 || len(pkts[0].Data) != 200 {
		t.Fatalf("packet round trip failed: ok=%v pkts=%d", ok, len(pkts))
	}

	// Reassembly.
	ra := vpnm.NewReassembler(mem, vpnm.ReassemblerConfig{})
	if err := ra.Submit(1, 64, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := ra.Submit(1, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if !ra.Drain(1_000_000) {
		t.Fatal("reassembler drain failed")
	}
	if got := len(ra.InOrder(1)); got != 128 {
		t.Fatalf("reassembled %d bytes want 128", got)
	}

	// Forwarding.
	ft, err := vpnm.NewForwardingTable(mem, 1<<30, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.Insert(0x0A000000, 8, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := ft.Sync(); err != nil {
		t.Fatal(err)
	}
	fe := vpnm.NewForwardingEngine(ft)
	fe.Start(0x0A010203, 1)
	res := fe.Drain(1_000_000)
	if len(res) != 1 || res[0].Hop != vpnm.NextHop(7) {
		t.Fatalf("lookup: %+v", res)
	}

	// Classification.
	clf, err := vpnm.NewClassifier(mem, 1<<31, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := clf.AddRule(vpnm.ClassifierRule{SrcAddr: 0x0A000000, SrcLen: 8, Priority: 5, Action: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := clf.Sync(64); err != nil {
		t.Fatal(err)
	}
	ce := vpnm.NewClassifierEngine(clf)
	ce.Start(0x0A010203, 0x14000000, 1)
	cres := ce.Drain(1_000_000)
	if len(cres) != 1 || !cres[0].Matched || cres[0].Rule.Action != 9 {
		t.Fatalf("classification: %+v", cres)
	}
}
