package sim

import (
	"fmt"
	"testing"
)

// TestFleetChaos: the sharded-serving acceptance gate. A 4-shard fleet
// under connection chaos on two shards, with a forced transport cut and
// one live drain of a chaotic shard mid-read, completes every key
// exactly once with zero per-shard fixed-D violations, and the fleet
// ledger reconciles exactly against the per-shard engine ledgers —
// race-clean across >= 5 seeds.
func TestFleetChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet chaos is a long soak")
	}
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := RunFleetChaos(FleetChaosOptions{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("\n%s", res)
			if !res.Ok() {
				t.Fatalf("%d invariant violations", len(res.Violations))
			}
		})
	}
}
