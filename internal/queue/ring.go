// Package queue provides the small fixed-capacity queue structures used
// throughout the VPNM bank controller: a bounded ring FIFO (the bank
// access queue and the write buffer are both instances of it) and the
// two-set circular delay buffer described in Section 4.1 of the paper.
package queue

import "fmt"

// Ring is a bounded FIFO ring buffer with a fixed capacity chosen at
// construction time. The zero value is not usable; call NewRing.
//
// Ring is generic so the same structure backs the bank access queue
// (entries are row ids plus a read/write bit) and the write buffer
// (entries are address/data pairs), mirroring the hardware where both
// are small SRAM FIFOs.
type Ring[T any] struct {
	buf   []T
	head  int // index of the oldest element
	count int
}

// NewRing returns an empty ring that can hold up to capacity elements.
// It panics if capacity is not positive: a zero-capacity hardware FIFO
// is a configuration error, not a runtime condition.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue: ring capacity must be positive, got %d", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Len reports the number of queued elements.
func (r *Ring[T]) Len() int { return r.count }

// Cap reports the fixed capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Full reports whether a Push would fail.
func (r *Ring[T]) Full() bool { return r.count == len(r.buf) }

// Empty reports whether a Pop would fail.
func (r *Ring[T]) Empty() bool { return r.count == 0 }

// Push appends v to the tail. It reports false (and queues nothing) when
// the ring is full; in the controller this is exactly a stall condition.
func (r *Ring[T]) Push(v T) bool {
	if r.Full() {
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
	return true
}

// Pop removes and returns the oldest element. ok is false when empty.
func (r *Ring[T]) Pop() (v T, ok bool) {
	if r.count == 0 {
		return v, false
	}
	var zero T
	v = r.buf[r.head]
	r.buf[r.head] = zero // release references for GC
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return v, true
}

// Peek returns the oldest element without removing it.
func (r *Ring[T]) Peek() (v T, ok bool) {
	if r.count == 0 {
		return v, false
	}
	return r.buf[r.head], true
}

// At returns the i-th queued element counting from the head (0 = oldest).
// It panics when i is out of range, as hardware index decoders would
// never be driven out of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.count {
		panic(fmt.Sprintf("queue: ring index %d out of range [0,%d)", i, r.count))
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Reset empties the ring without reallocating.
func (r *Ring[T]) Reset() {
	var zero T
	for i := range r.buf {
		r.buf[i] = zero
	}
	r.head, r.count = 0, 0
}
