package multichannel

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
)

func cfg() core.Config {
	return core.Config{Banks: 8, QueueDepth: 16, DelayRows: 64, WordBytes: 8}
}

func TestValidation(t *testing.T) {
	if _, err := New(cfg(), 3, 1); err == nil {
		t.Error("non-power-of-two channels accepted")
	}
	if _, err := New(cfg(), 0, 1); err == nil {
		t.Error("zero channels accepted")
	}
	m, err := New(cfg(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Channels() != 4 {
		t.Fatalf("channels = %d", m.Channels())
	}
}

func TestAddressesPinToChannels(t *testing.T) {
	m, _ := New(cfg(), 4, 7)
	for a := uint64(0); a < 1000; a++ {
		if m.Channel(a) != m.Channel(a) || m.Channel(a) >= 4 {
			t.Fatalf("unstable or out-of-range channel for %d", a)
		}
	}
}

func TestReadYourWritesAcrossChannels(t *testing.T) {
	m, _ := New(cfg(), 4, 3)
	want := map[uint64]byte{}
	for a := uint64(0); a < 64; a++ {
		// One write per cycle keeps it simple (single-channel use).
		for {
			err := m.Write(a, []byte{byte(a * 7)})
			if err == nil {
				break
			}
			if !errors.Is(err, ErrChannelBusy) && !core.IsStall(err) {
				t.Fatal(err)
			}
			m.Tick()
		}
		want[a] = byte(a * 7)
		m.Tick()
	}
	expect := map[uint64]uint64{} // tag -> addr
	for a := uint64(0); a < 64; a++ {
		for {
			tag, err := m.Read(a)
			if err == nil {
				expect[tag] = a
				break
			}
			if !errors.Is(err, ErrChannelBusy) && !core.IsStall(err) {
				t.Fatal(err)
			}
			m.Tick()
		}
		m.Tick()
	}
	for m.Outstanding() > 0 {
		for _, comp := range m.Tick() {
			addr, ok := expect[comp.Tag]
			if !ok {
				t.Fatalf("unknown tag %d", comp.Tag)
			}
			if comp.Addr != addr || comp.Data[0] != want[addr] {
				t.Fatalf("addr %d: got addr=%d data=%#x want %#x", addr, comp.Addr, comp.Data[0], want[addr])
			}
			delete(expect, comp.Tag)
		}
	}
	if len(expect) != 0 {
		t.Fatalf("%d reads unanswered", len(expect))
	}
}

// TestAggregateThroughputScales: with 4 channels and 4 issue attempts
// per cycle, accepted throughput must approach 4 requests/cycle (minus
// birthday-paradox channel conflicts), far beyond a single controller.
func TestAggregateThroughputScales(t *testing.T) {
	const channels = 4
	// Full-rate saturation per channel needs the strong Table 2 point
	// (8 banks would run unstable at ~0.7 req/cycle/channel).
	m, err := New(core.Config{QueueDepth: 64, DelayRows: 128, WordBytes: 8}, channels, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	const cycles = 20000
	var accepted, busy uint64
	for i := 0; i < cycles; i++ {
		for j := 0; j < channels; j++ {
			if _, err := m.Read(rng.Uint64()); err == nil {
				accepted++
			} else if errors.Is(err, ErrChannelBusy) {
				busy++
			} else if !core.IsStall(err) {
				t.Fatal(err)
			}
		}
		m.Tick()
	}
	tp := float64(accepted) / cycles
	// Random assignment of 4 balls to 4 bins covers ~(1-(3/4)^4) of
	// slots on average when retried greedily; 2.0+ per cycle is well
	// past any single controller and what this blind policy achieves.
	if tp < 2.0 {
		t.Fatalf("aggregate throughput %.2f req/cycle; striping is not scaling", tp)
	}
	if busy == 0 {
		t.Fatal("no channel conflicts with random traffic? selector broken")
	}
	r, _, b, stalls := m.Stats()
	if r != accepted || b != busy {
		t.Fatalf("stats mismatch: %d/%d vs %d/%d", r, b, accepted, busy)
	}
	if stalls != 0 {
		t.Fatalf("unexpected controller stalls: %d", stalls)
	}
}

// TestFixedLatencyAcrossChannels: striping must not disturb the
// deterministic delay.
func TestFixedLatencyAcrossChannels(t *testing.T) {
	m, _ := New(cfg(), 2, 5)
	d := uint64(m.Delay())
	rng := rand.New(rand.NewPCG(3, 4))
	issued := 0
	checked := 0
	for issued < 500 {
		if _, err := m.Read(rng.Uint64()); err == nil {
			issued++
		}
		for _, comp := range m.Tick() {
			if comp.DeliveredAt-comp.IssuedAt != d {
				t.Fatalf("latency %d != D=%d", comp.DeliveredAt-comp.IssuedAt, d)
			}
			checked++
		}
	}
	for m.Outstanding() > 0 {
		for _, comp := range m.Tick() {
			if comp.DeliveredAt-comp.IssuedAt != d {
				t.Fatalf("latency %d != D=%d", comp.DeliveredAt-comp.IssuedAt, d)
			}
			checked++
		}
	}
	if checked != 500 {
		t.Fatalf("checked %d of 500", checked)
	}
}

// TestTagRoundTrip: global tags must be unique and decodable even when
// several channels complete on the same cycle.
func TestTagRoundTrip(t *testing.T) {
	m, _ := New(cfg(), 8, 9)
	seen := map[uint64]bool{}
	rng := rand.New(rand.NewPCG(5, 6))
	issued := 0
	for issued < 300 {
		for j := 0; j < 8; j++ {
			if tag, err := m.Read(rng.Uint64()); err == nil {
				if seen[tag] {
					t.Fatalf("duplicate global tag %d", tag)
				}
				seen[tag] = true
				issued++
			}
		}
		m.Tick()
	}
	bufEq := 0
	for m.Outstanding() > 0 {
		comps := m.Tick()
		for i := 1; i < len(comps); i++ {
			if &comps[i].Data[0] == &comps[i-1].Data[0] {
				bufEq++
			}
		}
	}
	if bufEq > 0 {
		t.Fatalf("%d same-cycle completions share a data buffer", bufEq)
	}
}

func TestWriteTooLongRejected(t *testing.T) {
	m, _ := New(cfg(), 2, 1)
	if err := m.Write(0, bytes.Repeat([]byte{1}, 9)); err == nil {
		t.Fatal("oversized write accepted")
	}
}
