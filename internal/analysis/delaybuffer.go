// Package analysis implements the mathematical Mean-Time-to-Stall (MTS)
// analysis of Section 5 of the paper: a closed-form bound for the delay
// storage buffer stall (Section 5.1) and an absorbing Markov chain for
// the bank access queue stall (Section 5.2). Because the randomized
// bank mapping is universal, these models — not packet traces — are what
// bound the behaviour of the worst-case adversary.
package analysis

import "math"

// MTSCap is the ceiling the paper applies to all reported MTS values
// (10^16 cycles); beyond it the distinction is meaningless.
const MTSCap = 1e16

// LogBinom returns ln C(n, k), or -Inf when the coefficient is zero.
func LogBinom(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	ln2, _ := math.Lgamma(float64(k + 1))
	ln3, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - ln2 - ln3
}

// DelayBufferStallProb returns the paper's per-request probability that
// a delay storage buffer overfills: the chance that at least K-1 of the
// D-1 requests following a given request land in the same bank,
//
//	p = C(D-1, K-1) * (1/B)^(K-1).
//
// The value is a union bound per window; the paper uses it directly.
func DelayBufferStallProb(b, k, d int) float64 {
	return math.Exp(logDelayBufferStallProb(b, k, d))
}

func logDelayBufferStallProb(b, k, d int) float64 {
	if k < 1 || d < 1 || b < 1 {
		return 0 // degenerate configurations stall immediately
	}
	return LogBinom(d-1, k-1) - float64(k-1)*math.Log(float64(b))
}

// DelayBufferMTS evaluates the Section 5.1 closed form
//
//	MTS = log(1/2) / log(1 - p) + D
//
// in the log domain so that probabilities far below the float64
// granularity still give finite answers. The result is in cycles
// (equivalently requests at one request per cycle); +Inf means the
// window is too short to ever gather K conflicting requests (K-1 > D-1).
func DelayBufferMTS(b, k, d int) float64 {
	lp := logDelayBufferStallProb(b, k, d)
	if math.IsInf(lp, -1) {
		return math.Inf(1)
	}
	if lp >= 0 {
		return float64(d) // a stall is (at least) certain every window
	}
	p := math.Exp(lp)
	if p < 1e-8 {
		// log(1-p) ~ -p; MTS ~ ln2/p, computed in logs to survive p ~ 1e-300.
		return math.Exp(math.Log(math.Ln2)-lp) + float64(d)
	}
	return math.Ln2/-math.Log1p(-p) + float64(d)
}

// DelayBufferTailProb returns the exact per-request stall probability:
// the binomial tail P[X >= K-1] for X ~ Bin(D-1, 1/B). The paper's
// printed formula is the first term of this sum *without* the
// (1-1/B)^(D-1-j) factor — a union bound that overstates the stall
// probability (so understates MTS, which is the safe direction for a
// designer). The exact tail is what the cycle-accurate simulator
// reproduces; see the validation experiment.
func DelayBufferTailProb(b, k, d int) float64 {
	if k < 1 || d < 1 || b < 1 {
		return 1
	}
	if k-1 > d-1 {
		return 0
	}
	logP := -math.Log(float64(b))
	logQ := math.Log1p(-1 / float64(b))
	if math.IsInf(logQ, -1) { // B == 1
		return 1
	}
	// Log-domain sum of C(D-1, j) p^j q^(D-1-j) for j = K-1 .. D-1.
	var maxTerm float64 = math.Inf(-1)
	terms := make([]float64, 0, d-k+1)
	for j := k - 1; j <= d-1; j++ {
		t := LogBinom(d-1, j) + float64(j)*logP + float64(d-1-j)*logQ
		terms = append(terms, t)
		if t > maxTerm {
			maxTerm = t
		}
	}
	if math.IsInf(maxTerm, -1) {
		return 0
	}
	sum := 0.0
	for _, t := range terms {
		sum += math.Exp(t - maxTerm)
	}
	p := math.Exp(maxTerm) * sum
	if p > 1 {
		return 1
	}
	return p
}

// DelayBufferMTSExact is DelayBufferMTS evaluated with the exact
// binomial tail instead of the paper's union bound. It is always at
// least as large as the paper's figure.
func DelayBufferMTSExact(b, k, d int) float64 {
	p := DelayBufferTailProb(b, k, d)
	if p == 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return float64(d)
	}
	if p < 1e-8 {
		return math.Ln2/p + float64(d)
	}
	return math.Ln2/-math.Log1p(-p) + float64(d)
}

// PaperDelay converts the paper's convention for the normalized delay —
// "the actual value of D is dependent on L and the size of bank access
// queue" with D proportional to Q — into interface cycles: Q bank
// occupancies of L memory cycles, served R times faster than the
// interface. For Q=64, L=20, R=1.3 this is ~985, the paper's "1000 ns
// is more than enough" figure.
func PaperDelay(q, l int, r float64) int {
	return int(math.Ceil(float64(q*l) / r))
}

// DelayWindow is the observation window (in requests) used by the
// Figure 4 delay-storage-buffer analysis: rows are reserved for the Q*L
// memory cycles a worst-case backlog takes to drain. Using this window
// reproduces the paper's plotted anchor (B=32, K=32 -> MTS ~1e12-1e13);
// the ~1/R-smaller PaperDelay is the figure the paper quotes in
// nanoseconds for the interface-side latency.
func DelayWindow(q, l int) int { return q * l }
