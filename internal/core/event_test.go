package core_test

// Differential tests for the event-driven controller core. The
// controller keeps active-set bookkeeping (queued-bank and in-flight
// bitmaps, a global due-playback FIFO) so Tick touches only banks with
// work; Config.DenseScan selects the original O(Banks) reference scans
// over the very same state. These tests drive both implementations in
// lockstep through fuzzed workloads — merges, stalls, faults, rekeys,
// both arbiter modes, dual-port issue — and demand bit-identical
// behaviour at every observable surface: per-cycle completions, request
// errors and tags, telemetry samples, trace event streams, and the
// final Stats ledger. The drain test additionally pins that the
// SkipIdle fast-forward used by Flush is exactly equivalent to ticking
// through the skipped span one cycle at a time.

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"testing"

	codedpkg "repro/internal/coded"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// traceEvent is one Tracer callback flattened into a comparable value.
type traceEvent struct {
	kind       string
	cycle      uint64
	bank       int
	write      bool
	merged     bool
	addr, tag  uint64
	stallCause error
}

// diffTrace records every Tracer event in order.
type diffTrace struct{ events []traceEvent }

func (d *diffTrace) OnRequest(cycle uint64, bank int, isWrite, merged bool, addr, tag uint64) {
	d.events = append(d.events, traceEvent{kind: "request", cycle: cycle, bank: bank, write: isWrite, merged: merged, addr: addr, tag: tag})
}
func (d *diffTrace) OnStall(cycle uint64, bank int, addr uint64, err error) {
	d.events = append(d.events, traceEvent{kind: "stall", cycle: cycle, bank: bank, addr: addr, stallCause: err})
}
func (d *diffTrace) OnIssue(memCycle uint64, bank int, isWrite bool, addr uint64) {
	d.events = append(d.events, traceEvent{kind: "issue", cycle: memCycle, bank: bank, write: isWrite, addr: addr})
}
func (d *diffTrace) OnDataReady(memCycle uint64, bank int, addr uint64) {
	d.events = append(d.events, traceEvent{kind: "ready", cycle: memCycle, bank: bank, addr: addr})
}
func (d *diffTrace) OnDeliver(cycle uint64, bank int, addr, tag uint64) {
	d.events = append(d.events, traceEvent{kind: "deliver", cycle: cycle, bank: bank, addr: addr, tag: tag})
}

// lastProbe keeps a deep copy of the most recent telemetry sample and
// counts samples, so two controllers' probe streams can be compared
// cycle by cycle.
type lastProbe struct {
	n      uint64
	last   telemetry.TickSample
	pq, pr []int32
}

func (p *lastProbe) ObserveTick(s *telemetry.TickSample) {
	p.n++
	p.pq = append(p.pq[:0], s.PerBankQueue...)
	p.pr = append(p.pr[:0], s.PerBankRows...)
	p.last = *s
	p.last.PerBankQueue, p.last.PerBankRows = p.pq, p.pr
}

func errEq(a, b error) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Error() == b.Error()
}

func compareComps(t *testing.T, where string, ev, dn []core.Completion) {
	t.Helper()
	if len(ev) != len(dn) {
		t.Fatalf("%s: event path delivered %d completions, dense %d", where, len(ev), len(dn))
	}
	for i := range ev {
		e, d := ev[i], dn[i]
		if e.Tag != d.Tag || e.Addr != d.Addr || e.IssuedAt != d.IssuedAt ||
			e.DeliveredAt != d.DeliveredAt || !bytes.Equal(e.Data, d.Data) || !errEq(e.Err, d.Err) {
			t.Fatalf("%s: completion %d diverged:\nevent %+v\ndense %+v", where, i, e, d)
		}
	}
}

// diffCase parameterizes one lockstep differential run.
type diffCase struct {
	cfg        core.Config
	fault      *fault.Config
	seed       uint64
	cycles     int
	addrMask   uint64
	rekeyEvery int
	// op maps one random draw to this cycle's request decisions. With
	// cfg.DualPort false at most one of the two may be true.
	op func(v uint64) (doRead, doWrite bool)
	// readsPerCycle > 1 issues that many read attempts per read cycle
	// (addresses derived from independent bits of the draw) to exercise
	// the coded multi-port admission path; errors — including
	// ErrSecondRequest past the cap and coded-port stalls — must still
	// match between the event and dense paths attempt for attempt.
	readsPerCycle int
}

// runEventDiff drives an event-driven controller and a DenseScan
// reference through an identical workload, comparing every observable
// after every cycle.
func runEventDiff(t *testing.T, tc diffCase) {
	t.Helper()
	build := func(dense bool) (*core.Controller, *diffTrace, *lastProbe) {
		cfg := tc.cfg
		cfg.DenseScan = dense
		tr := &diffTrace{}
		pr := &lastProbe{}
		cfg.Trace = tr
		cfg.Probe = pr
		if tc.fault != nil {
			inj, err := fault.New(*tc.fault)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Fault = inj
			cfg.Delay = cfg.AutoDelayWithSlack(tc.fault.SlowBankExtra)
		}
		c, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c, tr, pr
	}
	ec, etr, epr := build(false)
	dc, dtr, dpr := build(true)

	checked := 0
	syncTrace := func(where string) {
		t.Helper()
		if len(etr.events) != len(dtr.events) {
			t.Fatalf("%s: event path traced %d events, dense %d", where, len(etr.events), len(dtr.events))
		}
		for i := checked; i < len(etr.events); i++ {
			if etr.events[i] != dtr.events[i] {
				t.Fatalf("%s: trace event %d diverged:\nevent %+v\ndense %+v", where, i, etr.events[i], dtr.events[i])
			}
		}
		checked = len(etr.events)
	}
	syncProbes := func(where string) {
		t.Helper()
		if epr.n != dpr.n {
			t.Fatalf("%s: event path published %d samples, dense %d", where, epr.n, dpr.n)
		}
		if epr.n > 0 && !reflect.DeepEqual(epr.last, dpr.last) {
			t.Fatalf("%s: probe sample diverged:\nevent %+v\ndense %+v", where, epr.last, dpr.last)
		}
	}
	tickBoth := func(where string) {
		t.Helper()
		compareComps(t, where, ec.Tick(), dc.Tick())
		syncTrace(where)
		syncProbes(where)
	}

	rng := rand.New(rand.NewPCG(tc.seed, 0x6a09e667f3bcc908))
	data := make([]byte, tc.cfg.WordBytes)
	where := func(i int) string { return "cycle " + itoa(i) }
	for i := 0; i < tc.cycles; i++ {
		if tc.rekeyEvery > 0 && i > 0 && i%tc.rekeyEvery == 0 {
			ns := rng.Uint64() // one draw, same new seed for both
			em, ecy, edr, eerr := ec.Rekey(ns)
			dm, dcy, ddr, derr := dc.Rekey(ns)
			if em != dm || ecy != dcy || !errEq(eerr, derr) {
				t.Fatalf("%s: rekey diverged: event (%d,%d,%v) dense (%d,%d,%v)",
					where(i), em, ecy, eerr, dm, dcy, derr)
			}
			compareComps(t, where(i)+" rekey drain", edr, ddr)
			syncTrace(where(i) + " rekey")
			syncProbes(where(i) + " rekey")
		}
		v := rng.Uint64()
		doRead, doWrite := tc.op(v)
		addr := (v >> 16) & tc.addrMask
		if doWrite {
			for j := range data {
				data[j] = byte(v >> (8 * uint(j%8)))
			}
			eerr := ec.Write(addr, data)
			derr := dc.Write(addr, data)
			if !errEq(eerr, derr) {
				t.Fatalf("%s: write err diverged: event %v dense %v", where(i), eerr, derr)
			}
		}
		if doRead {
			n := tc.readsPerCycle
			if n < 1 {
				n = 1
			}
			for j := 0; j < n; j++ {
				addrJ := addr
				if j > 0 {
					addrJ = (v >> (16 + 7*uint(j))) & tc.addrMask
				}
				etag, eerr := ec.Read(addrJ)
				dtag, derr := dc.Read(addrJ)
				if etag != dtag || !errEq(eerr, derr) {
					t.Fatalf("%s: read %d diverged: event (%d,%v) dense (%d,%v)", where(i), j, etag, eerr, dtag, derr)
				}
			}
		}
		tickBoth(where(i))
	}

	// Drain both to quiescence in lockstep — the tail deliveries and
	// queued writes must also line up cycle for cycle.
	for !ec.Quiescent() || !dc.Quiescent() {
		if ec.Quiescent() != dc.Quiescent() {
			t.Fatalf("quiescence diverged: event %v dense %v", ec.Quiescent(), dc.Quiescent())
		}
		tickBoth("drain")
	}
	if ec.Cycle() != dc.Cycle() {
		t.Fatalf("final cycle diverged: event %d dense %d", ec.Cycle(), dc.Cycle())
	}
	if es, ds := ec.Stats(), dc.Stats(); !reflect.DeepEqual(es, ds) {
		t.Fatalf("final Stats diverged:\nevent %+v\ndense %+v", es, ds)
	}
}

// TestEventDenseDifferential is the exactness proof for the
// event-driven core: across fuzzed workloads covering merges, stalls,
// write-buffer pressure, dual-port issue, both arbiter modes, fault
// injection, and mid-run rekeys, the event-driven Tick and the dense
// reference scans must be cycle-for-cycle bit-identical.
func TestEventDenseDifferential(t *testing.T) {
	base := core.Config{Banks: 16, QueueDepth: 4, DelayRows: 8, WordBytes: 8, HashSeed: 1234}
	// Mixed read/write/idle with heavy address aliasing: exercises
	// merges, bank-queue and write-buffer stalls, counter saturation.
	mixed := func(v uint64) (bool, bool) {
		switch v % 16 {
		case 0, 1, 2, 3, 4, 5:
			return true, false
		case 6, 7, 8, 9:
			return false, true
		default:
			return false, false
		}
	}
	sparse := func(v uint64) (bool, bool) { return v%64 == 0, false }

	t.Run("mixed", func(t *testing.T) {
		runEventDiff(t, diffCase{cfg: base, seed: 1, cycles: 40000, addrMask: 0x3f, op: mixed})
	})
	t.Run("strict-round-robin", func(t *testing.T) {
		cfg := base
		cfg.StrictRoundRobin = true
		runEventDiff(t, diffCase{cfg: cfg, seed: 2, cycles: 20000, addrMask: 0x3f, op: mixed})
	})
	t.Run("dual-port", func(t *testing.T) {
		cfg := base
		cfg.DualPort = true
		dual := func(v uint64) (bool, bool) { return v%16 < 8, (v>>4)%16 < 6 }
		runEventDiff(t, diffCase{cfg: cfg, seed: 3, cycles: 20000, addrMask: 0x3f, op: dual})
	})
	t.Run("faults", func(t *testing.T) {
		fc := &fault.Config{Seed: 5, SingleBitRate: 2e-3, DoubleBitRate: 1e-3, SlowBankRate: 0.05, SlowBankExtra: 4}
		runEventDiff(t, diffCase{cfg: base, fault: fc, seed: 4, cycles: 20000, addrMask: 0x3f, op: mixed})
	})
	t.Run("rekey", func(t *testing.T) {
		runEventDiff(t, diffCase{cfg: base, seed: 5, cycles: 24000, addrMask: 0x3f, rekeyEvery: 7001, op: mixed})
	})
	t.Run("wide-sparse", func(t *testing.T) {
		cfg := core.Config{Banks: 128, QueueDepth: 4, DelayRows: 8, WordBytes: 8, HashSeed: 77}
		runEventDiff(t, diffCase{cfg: cfg, seed: 6, cycles: 12000, addrMask: 0xffff, op: sparse})
	})
	// Coded subtests: XOR-parity bank groups with K=2 read ports per
	// cycle. Multi-read cycles hit the merge/direct/decode arbitration,
	// the K admission cap (ErrSecondRequest on the third attempt), and
	// coded-port stalls — all must match the dense replay bit for bit,
	// probes and parity-decode ledgers included.
	coded := base
	coded.Coded = codedpkg.Geometry{Group: 4, K: 2}
	t.Run("coded-mixed", func(t *testing.T) {
		runEventDiff(t, diffCase{cfg: coded, seed: 21, cycles: 30000, addrMask: 0x3f, op: mixed, readsPerCycle: 3})
	})
	t.Run("coded-strict-round-robin", func(t *testing.T) {
		cfg := coded
		cfg.StrictRoundRobin = true
		runEventDiff(t, diffCase{cfg: cfg, seed: 22, cycles: 20000, addrMask: 0x3f, op: mixed, readsPerCycle: 3})
	})
	t.Run("coded-dual-port", func(t *testing.T) {
		cfg := coded
		cfg.DualPort = true
		dual := func(v uint64) (bool, bool) { return v%16 < 8, (v>>4)%16 < 6 }
		runEventDiff(t, diffCase{cfg: cfg, seed: 23, cycles: 20000, addrMask: 0x3f, op: dual, readsPerCycle: 2})
	})
	t.Run("coded-faults", func(t *testing.T) {
		fc := &fault.Config{Seed: 13, SingleBitRate: 2e-3, DoubleBitRate: 1e-3, SlowBankRate: 0.05, SlowBankExtra: 4}
		runEventDiff(t, diffCase{cfg: coded, fault: fc, seed: 24, cycles: 20000, addrMask: 0x3f, op: mixed, readsPerCycle: 2})
	})
	t.Run("coded-rekey", func(t *testing.T) {
		runEventDiff(t, diffCase{cfg: coded, seed: 25, cycles: 24000, addrMask: 0x3f, rekeyEvery: 6007, op: mixed, readsPerCycle: 2})
	})
	t.Run("faulty-dual-strict", func(t *testing.T) {
		cfg := base
		cfg.DualPort = true
		cfg.StrictRoundRobin = true
		fc := &fault.Config{Seed: 9, SingleBitRate: 1e-3, SlowBankRate: 0.02, SlowBankExtra: 3}
		dual := func(v uint64) (bool, bool) { return v%16 < 7, (v>>4)%16 < 5 }
		runEventDiff(t, diffCase{cfg: cfg, fault: fc, seed: 7, cycles: 16000, addrMask: 0x3f, op: dual})
	})
}

// TestDrainFastForwardExact is the quiescence property test: from any
// fuzzed mid-flight state, the Flush/SkipIdle fast-forward path must
// complete every outstanding read at exactly issue+D and leave the
// Stats ledgers identical to a tick-by-tick drain of the dense
// reference — skipped cycles are ordinary cycles, just not paid for
// one Tick at a time.
func TestDrainFastForwardExact(t *testing.T) {
	for _, seed := range []uint64{11, 23, 31, 47, 101} {
		t.Run("seed="+itoa(int(seed)), func(t *testing.T) {
			cfg := core.Config{Banks: 16, QueueDepth: 4, DelayRows: 8, WordBytes: 4, HashSeed: 999}
			ec, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			dcfg := cfg
			dcfg.DenseScan = true
			dc, err := core.New(dcfg)
			if err != nil {
				t.Fatal(err)
			}

			// Drive both to a random mid-flight state: requests still
			// queued, reads in flight, playbacks pending.
			rng := rand.New(rand.NewPCG(seed, 0xbb67ae8584caa73b))
			warm := 200 + int(rng.Uint64()%3000)
			data := make([]byte, cfg.WordBytes)
			for i := 0; i < warm; i++ {
				v := rng.Uint64()
				addr := (v >> 8) & 0x7f
				switch v % 4 {
				case 0, 1:
					et, ee := ec.Read(addr)
					dt, de := dc.Read(addr)
					if et != dt || !errEq(ee, de) {
						t.Fatalf("warmup read diverged")
					}
				case 2:
					for j := range data {
						data[j] = byte(v)
					}
					if !errEq(ec.Write(addr, data), dc.Write(addr, data)) {
						t.Fatalf("warmup write diverged")
					}
				}
				compareComps(t, "warmup", ec.Tick(), dc.Tick())
			}
			if ec.Outstanding() == 0 {
				t.Fatalf("warmup left nothing in flight; workload too light to test the drain")
			}

			// Event path: Flush (skip-ahead). Dense path: literal
			// tick-by-tick drain to the same quiescence condition.
			d := uint64(ec.Delay())
			flushed := ec.Flush()
			var manual []core.Completion
			for !dc.Quiescent() {
				for _, comp := range dc.Tick() {
					comp.Data = append([]byte(nil), comp.Data...)
					manual = append(manual, comp)
				}
			}
			compareComps(t, "drain", flushed, manual)
			for _, comp := range flushed {
				if comp.DeliveredAt-comp.IssuedAt != d {
					t.Fatalf("completion tag %d latency %d != D=%d", comp.Tag, comp.DeliveredAt-comp.IssuedAt, d)
				}
			}
			if ec.Cycle() != dc.Cycle() {
				t.Fatalf("drain cycle diverged: flush %d tick-by-tick %d", ec.Cycle(), dc.Cycle())
			}
			if es, ds := ec.Stats(), dc.Stats(); !reflect.DeepEqual(es, ds) {
				t.Fatalf("drain Stats diverged:\nflush %+v\ntick  %+v", es, ds)
			}
			if !ec.Quiescent() {
				t.Fatal("controller not quiescent after Flush")
			}
			if ec.IdleCycles() != ^uint64(0) {
				t.Fatalf("quiescent controller reports finite idle span %d", ec.IdleCycles())
			}
		})
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
