package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/client"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// ErrNoShards reports a request routed through an empty fleet.
var ErrNoShards = errors.New("shard: fleet has no members")

// ErrMigrating reports an Add/Drain attempted while another membership
// change is still in its migration window.
var ErrMigrating = errors.New("shard: a migration window is already open")

// Dialer opens one transport to a shard's vpnmd.
type Dialer func() (net.Conn, error)

// Spec names one shard and how to reach it.
type Spec struct {
	// Name is the shard's ring identity. Every router in a fleet must
	// use the same name for the same daemon.
	Name string
	// Dial opens a transport to the shard. Required.
	Dial Dialer
}

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Ring parameterizes the consistent-hash partition. Every router
	// and daemon in the fleet must agree on it.
	Ring RingConfig
	// Client is the per-shard client template: every shard session is
	// built from it, with Dialer replaced by the shard's own Dial and
	// the jitter Seed decorrelated per shard. A nonzero SessionID arms
	// durable sessions on every shard (shards are distinct servers, so
	// one id does not collide across them).
	Client client.Config
	// Registry, when non-nil, receives per-shard vpnm_shard_* telemetry
	// series.
	Registry *telemetry.Registry
	// CopyWorkers bounds concurrent key relocations during a migration
	// window. Zero selects 16.
	CopyWorkers int
}

// shardMetrics is the telemetry set for one shard name, cached so a
// drained shard re-added under the same name reuses its series instead
// of colliding in the registry.
type shardMetrics struct {
	reads, writes, doubleReads, dualWrites, migratedIn, migratedOut *telemetry.Counter
	attached                                                        *telemetry.Gauge
}

// handle is one shard's live state: the client session plus routing
// metadata. Handles are immutable after attach except for the retired
// flag (guarded by Router.mu).
type handle struct {
	name    string
	c       *client.Client
	dial    Dialer
	delay   uint64 // advertised fixed D, learned at attach
	m       *shardMetrics
	retired bool
}

// ShardCounters is one shard's slice of the fleet ledger.
type ShardCounters struct {
	Name    string
	Delay   uint64
	Retired bool
	client.Counters
}

// FleetCounters reconciles the per-shard ledgers into one fleet-wide
// view: Shards lists every member the router ever spoke to (live first,
// then retired, each sorted by name) and Total is the field-wise sum —
// exact, because every request the router issued is in exactly one
// shard's ledger.
type FleetCounters struct {
	Shards []ShardCounters
	Total  client.Counters
	// Migrations counts completed membership changes; MovedKeys the
	// tracked keys relocated by their copy phases; SkippedDirty the
	// relocations skipped because a live write already refreshed the
	// destination; DoubleReads and DualWrites the extra reads/writes
	// issued inside migration windows. The extras are deliberately NOT
	// folded into Total: Total reconciles against the per-shard server
	// ledgers, which do observe the extras in their own counts.
	Migrations, MovedKeys, SkippedDirty, DoubleReads, DualWrites uint64
}

// Violations sums fixed-D violations across every shard, live and
// retired. Zero is the fleet-wide determinism contract.
func (f FleetCounters) Violations() uint64 {
	var n uint64
	for _, s := range f.Shards {
		n += s.LatencyViolations
	}
	return n
}

// addCounters is the field-wise sum used for the fleet total.
func addCounters(t *client.Counters, c client.Counters) {
	t.Issued += c.Issued
	t.Reads += c.Reads
	t.Writes += c.Writes
	t.AcceptedWrites += c.AcceptedWrites
	t.Completions += c.Completions
	t.Uncorrectable += c.Uncorrectable
	t.Stalls.DelayBuffer += c.Stalls.DelayBuffer
	t.Stalls.BankQueue += c.Stalls.BankQueue
	t.Stalls.WriteBuffer += c.Stalls.WriteBuffer
	t.Stalls.Counter += c.Stalls.Counter
	t.Stalls.Throttled += c.Stalls.Throttled
	t.Stalls.Other += c.Stalls.Other
	t.Retries += c.Retries
	t.Drops += c.Drops
	t.Exhausted += c.Exhausted
	t.LatencyViolations += c.LatencyViolations
	t.Reconnects += c.Reconnects
	t.Retransmits += c.Retransmits
	t.DeadlineExceeded += c.DeadlineExceeded
}

// Router is the fleet frontend: it partitions the address space over N
// vpnmd shards with a deterministic consistent-hash ring and routes
// every request to its owner, preserving each shard's fixed-D check,
// stall policy and per-request deadlines (all inherited from the client
// template). All methods are safe for concurrent use.
//
// Membership is live: AddShard and DrainShard recompute the ring,
// relocate exactly the moved key ranges through the affected shards,
// and keep serving throughout — reads of moved keys double-read (the
// old owner stays authoritative until the window closes), writes
// dual-write so neither owner is ever stale.
//
// The router tracks the set of keys written through it; that registry
// is what the migration copy phase enumerates. The contract is
// therefore single-frontend: a migration relocates every key written
// through THIS router. Fleets with many frontends must route membership
// changes through one of them (or an external driver replaying the
// union of key registries).
type Router struct {
	cfg     RouterConfig
	workers int

	// mu guards the routing topology: ring, shards, retired and the
	// migration window state. Read/Write hold it shared across routing
	// AND client enqueue, so a flip (which takes it exclusively) cannot
	// land between "route chosen" and "request queued" — after a flip
	// returns, every request routed by the old ring is already inside
	// its shard's session queue, where a final Flush covers it.
	mu       sync.RWMutex
	ring     *Ring
	shards   map[string]*handle
	retired  []*handle
	mig      *migration // nil outside a window
	nextSeed int64      // per-shard jitter decorrelation
	// live is the cached fan-out list (ring members in sorted order,
	// then any mid-window destination), rebuilt on every membership
	// change so the per-batch Kick/Flush paths allocate nothing. The
	// slice is immutable once published; readers may iterate it after
	// dropping mu.
	live []*handle

	// keysMu guards the written-key registry.
	keysMu sync.Mutex
	keys   map[uint64]struct{}

	metricsMu sync.Mutex
	metrics   map[string]*shardMetrics

	ctrMigrations, ctrMoved, ctrSkipped atomic.Uint64
	ctrDoubleReads, ctrDualWrites       atomic.Uint64
}

// migration is one open membership-change window.
type migration struct {
	next  *Ring
	moved []Movement
	to    map[string]*handle // destination handles by name

	// copyMu serializes destination writes for moved keys: a live
	// dual-write marks the key dirty and enqueues under it, the copier
	// checks dirty and enqueues under it — so a relocated (stale) image
	// can never be enqueued after a live write it would overwrite.
	copyMu sync.Mutex
	dirty  map[uint64]struct{}
}

// NewRouter connects to every shard in specs and assembles the fleet.
// Each attach performs a Stats round trip, arming that shard's
// client-side fixed-D check before any data moves.
func NewRouter(ctx context.Context, cfg RouterConfig, specs []Spec) (*Router, error) {
	r := &Router{
		cfg:     cfg,
		workers: cfg.CopyWorkers,
		shards:  make(map[string]*handle, len(specs)),
		keys:    make(map[uint64]struct{}),
		metrics: make(map[string]*shardMetrics),
	}
	if r.workers <= 0 {
		r.workers = 16
	}
	names := make([]string, 0, len(specs))
	for _, sp := range specs {
		names = append(names, sp.Name)
	}
	ring, err := NewRing(cfg.Ring, names)
	if err != nil {
		return nil, err
	}
	r.ring = ring
	for _, sp := range specs {
		h, err := r.attach(ctx, sp)
		if err != nil {
			r.Close()
			return nil, err
		}
		r.shards[sp.Name] = h
	}
	r.mu.Lock()
	r.rebuildLiveLocked()
	r.mu.Unlock()
	return r, nil
}

// attach dials one shard, builds its client from the template and arms
// its fixed-D check. It does not install the handle in the ring.
func (r *Router) attach(ctx context.Context, sp Spec) (*handle, error) {
	if sp.Name == "" || sp.Dial == nil {
		return nil, fmt.Errorf("shard: spec needs a name and a dialer")
	}
	nc, err := sp.Dial()
	if err != nil {
		return nil, fmt.Errorf("shard: dial %s: %w", sp.Name, err)
	}
	ccfg := r.cfg.Client
	if ccfg.SessionID != 0 {
		// Arm reconnection: a nonzero SessionID makes the session durable
		// on the daemon, and redialing through the shard's own Dial
		// resumes it there after a transport fault.
		ccfg.Dialer = func() (net.Conn, error) { return sp.Dial() }
	}
	ccfg.Seed = r.cfg.Client.Seed + int64(fnv64(sp.Name)>>1) + atomic.AddInt64(&r.nextSeed, 1)
	c := client.New(nc, ccfg)
	st, err := c.Stats(ctx)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("shard: arming %s: %w", sp.Name, err)
	}
	h := &handle{name: sp.Name, c: c, dial: sp.Dial, delay: st.Delay, m: r.metricsFor(sp.Name)}
	if h.m != nil {
		h.m.attached.Set(1)
	}
	return h, nil
}

// metricsFor returns (building once) the telemetry set for a shard
// name. Nil without a registry.
func (r *Router) metricsFor(name string) *shardMetrics {
	reg := r.cfg.Registry
	if reg == nil {
		return nil
	}
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := &shardMetrics{
		reads:       reg.Counter("vpnm_shard_reads_total", "Reads routed to the shard.", "shard", name),
		writes:      reg.Counter("vpnm_shard_writes_total", "Writes routed to the shard.", "shard", name),
		doubleReads: reg.Counter("vpnm_shard_double_reads_total", "Warming reads issued to the shard as migration destination.", "shard", name),
		dualWrites:  reg.Counter("vpnm_shard_dual_writes_total", "Duplicate writes issued to the shard as migration destination.", "shard", name),
		migratedIn:  reg.Counter("vpnm_shard_migrated_keys_in_total", "Keys relocated onto the shard by membership changes.", "shard", name),
		migratedOut: reg.Counter("vpnm_shard_migrated_keys_out_total", "Keys relocated off the shard by membership changes.", "shard", name),
		attached:    reg.Gauge("vpnm_shard_attached", "1 while the shard is a live ring member (0 once retired).", "shard", name),
	}
	r.metrics[name] = m
	return m
}

// Members returns the live ring membership, sorted.
func (r *Router) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.ring.Members()...)
}

// Ring returns the current (immutable) ring.
func (r *Router) Ring() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring
}

// Migrating reports whether a membership-change window is open.
func (r *Router) Migrating() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.mig != nil
}

// DelayOf reports the fixed D the named shard advertised at attach, or
// 0 for an unknown shard. Fixed-D is a per-shard contract: shards with
// different geometries advertise different Ds, and each client checks
// its own.
func (r *Router) DelayOf(name string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if h, ok := r.shards[name]; ok {
		return h.delay
	}
	for _, h := range r.retired {
		if h.name == name {
			return h.delay
		}
	}
	return 0
}

// Owner reports which live shard owns addr (the routing decision a
// Read/Write would make right now, ignoring any open window's
// double-routing).
func (r *Router) Owner(addr uint64) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Owner(addr)
}

// routeLocked resolves addr under r.mu (shared): the authoritative
// handle, plus the migration destination when addr sits in a moved arc
// of the open window.
func (r *Router) routeLocked(addr uint64) (primary, secondary *handle, mig *migration, err error) {
	owner := r.ring.Owner(addr)
	if owner == "" {
		return nil, nil, nil, ErrNoShards
	}
	primary = r.shards[owner]
	if primary == nil {
		return nil, nil, nil, fmt.Errorf("shard: ring member %s has no attached client", owner)
	}
	if r.mig != nil {
		p := r.ring.Point(addr)
		for i := range r.mig.moved {
			m := &r.mig.moved[i]
			if m.Contains(p) {
				return primary, r.mig.to[m.To], r.mig, nil
			}
		}
	}
	return primary, nil, nil, nil
}

// Read routes a read of addr to its owner shard. cb fires exactly once
// with the authoritative completion (the old owner's, during a
// migration window). Inside a window, a moved key is double-read: a
// warming read goes to the destination shard too, its verdict counted
// and discarded — it keeps the mover's pipeline warm and exercises the
// destination's fixed-D path before it takes ownership.
func (r *Router) Read(ctx context.Context, addr uint64, cb func(client.Completion)) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	primary, secondary, _, err := r.routeLocked(addr)
	if err != nil {
		return err
	}
	if secondary != nil {
		r.ctrDoubleReads.Add(1)
		if secondary.m != nil {
			secondary.m.doubleReads.Inc()
		}
		// Best-effort: a warming-read error must not fail the caller's
		// authoritative read.
		_ = secondary.c.Read(ctx, addr, nil) //nolint:errcheck
	}
	if primary.m != nil {
		primary.m.reads.Inc()
	}
	return primary.c.Read(ctx, addr, cb)
}

// Write routes a write of data to addr's owner shard. Inside a window,
// a moved key is dual-written — the destination gets the same word —
// so neither owner is stale whenever the window closes.
func (r *Router) Write(ctx context.Context, addr uint64, data []byte) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	primary, secondary, mig, err := r.routeLocked(addr)
	if err != nil {
		return err
	}
	r.keysMu.Lock()
	r.keys[addr] = struct{}{}
	r.keysMu.Unlock()
	if primary.m != nil {
		primary.m.writes.Inc()
	}
	if err := primary.c.Write(ctx, addr, data); err != nil {
		return err
	}
	if secondary != nil {
		r.ctrDualWrites.Add(1)
		if secondary.m != nil {
			secondary.m.dualWrites.Inc()
		}
		// The dirty mark and the destination enqueue are atomic under
		// copyMu: the copier can never enqueue a stale image after this
		// write (it either sees the mark and skips, or enqueued first
		// and this fresher write lands behind it in session FIFO order).
		mig.copyMu.Lock()
		mig.dirty[addr] = struct{}{}
		err := secondary.c.Write(ctx, addr, data)
		mig.copyMu.Unlock()
		return err
	}
	return nil
}

// Flush barriers every live shard: it returns once each shard has
// resolved everything issued to it before the call.
func (r *Router) Flush(ctx context.Context) error {
	for _, h := range r.liveHandles() {
		if err := h.c.Flush(ctx); err != nil {
			return fmt.Errorf("shard: flush %s: %w", h.name, err)
		}
	}
	return nil
}

// Kick flushes every live shard's send queue once (ManualBatch mode).
func (r *Router) Kick() error {
	for _, h := range r.liveHandles() {
		if err := h.c.Kick(); err != nil {
			return fmt.Errorf("shard: kick %s: %w", h.name, err)
		}
	}
	return nil
}

// Stats snapshots every live shard's server ledger.
func (r *Router) Stats(ctx context.Context) (map[string]wire.Stats, error) {
	out := make(map[string]wire.Stats)
	for _, h := range r.liveHandles() {
		st, err := h.c.Stats(ctx)
		if err != nil {
			return nil, fmt.Errorf("shard: stats %s: %w", h.name, err)
		}
		out[h.name] = st
	}
	return out, nil
}

func (r *Router) liveHandles() []*handle {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.live
}

// rebuildLiveLocked recomputes the cached fan-out list. Caller holds
// r.mu exclusively.
func (r *Router) rebuildLiveLocked() {
	out := make([]*handle, 0, len(r.shards))
	for _, name := range r.ring.Members() {
		if h := r.shards[name]; h != nil {
			out = append(out, h)
		}
	}
	// A mid-window destination is live too (it is already receiving
	// dual-writes and copies) even though it is not a ring member yet.
	names := make([]string, 0, len(r.shards))
	for name := range r.shards {
		if !ringHas(r.ring, name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, r.shards[name])
	}
	r.live = out
}

func ringHas(ring *Ring, name string) bool {
	for _, m := range ring.Members() {
		if m == name {
			return true
		}
	}
	return false
}

// Counters reconciles the per-shard ledgers into the fleet ledger.
func (r *Router) Counters() FleetCounters {
	r.mu.RLock()
	live := make([]*handle, 0, len(r.shards))
	for _, h := range r.shards {
		live = append(live, h)
	}
	ret := append([]*handle(nil), r.retired...)
	r.mu.RUnlock()
	sort.Slice(live, func(i, j int) bool { return live[i].name < live[j].name })
	sort.Slice(ret, func(i, j int) bool { return ret[i].name < ret[j].name })

	var f FleetCounters
	for _, h := range live {
		c := h.c.Counters()
		f.Shards = append(f.Shards, ShardCounters{Name: h.name, Delay: h.delay, Counters: c})
		addCounters(&f.Total, c)
	}
	for _, h := range ret {
		c := h.c.Counters()
		f.Shards = append(f.Shards, ShardCounters{Name: h.name, Delay: h.delay, Retired: true, Counters: c})
		addCounters(&f.Total, c)
	}
	f.Migrations = r.ctrMigrations.Load()
	f.MovedKeys = r.ctrMoved.Load()
	f.SkippedDirty = r.ctrSkipped.Load()
	f.DoubleReads = r.ctrDoubleReads.Load()
	f.DualWrites = r.ctrDualWrites.Load()
	return f
}

// TrackedKeys reports the size of the written-key registry (the set a
// migration copy phase enumerates).
func (r *Router) TrackedKeys() int {
	r.keysMu.Lock()
	defer r.keysMu.Unlock()
	return len(r.keys)
}

// AddShard grows the fleet: it dials the new shard, opens a migration
// window mapping the moved arcs onto it, relocates every tracked key in
// those arcs (read from the current owner, write to the new shard),
// then flips the ring so the new shard owns its arcs. Serving continues
// throughout; moved keys are double-read and dual-written inside the
// window. Returns the number of keys relocated.
func (r *Router) AddShard(ctx context.Context, sp Spec) (moved int, err error) {
	h, err := r.attach(ctx, sp)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	if r.mig != nil {
		r.mu.Unlock()
		h.c.Close()
		return 0, ErrMigrating
	}
	if _, dup := r.shards[sp.Name]; dup {
		r.mu.Unlock()
		h.c.Close()
		return 0, fmt.Errorf("shard: %s already in the fleet", sp.Name)
	}
	next, err := r.ring.Add(sp.Name)
	if err == nil {
		var movements []Movement
		movements, err = Moved(r.ring, next)
		if err == nil {
			r.shards[sp.Name] = h
			r.mig = &migration{
				next:  next,
				moved: movements,
				to:    map[string]*handle{sp.Name: h},
				dirty: make(map[uint64]struct{}),
			}
			r.rebuildLiveLocked()
		}
	}
	if err != nil {
		r.mu.Unlock()
		h.c.Close()
		return 0, err
	}
	r.mu.Unlock()
	return r.runWindow(ctx, nil)
}

// DrainShard shrinks the fleet: it opens a migration window reassigning
// every arc the named shard owns, relocates the tracked keys in those
// arcs to their new owners, flips the ring, then barriers the drained
// shard so nothing the router ever routed to it is left unresolved —
// at return, the daemon behind it can be server.Drain()ed and its
// ledger reconciled against the retired shard's entry in Counters().
// Returns the number of keys relocated.
func (r *Router) DrainShard(ctx context.Context, name string) (moved int, err error) {
	r.mu.Lock()
	if r.mig != nil {
		r.mu.Unlock()
		return 0, ErrMigrating
	}
	h := r.shards[name]
	if h == nil {
		r.mu.Unlock()
		return 0, fmt.Errorf("shard: %s not in the fleet", name)
	}
	if len(r.ring.Members()) == 1 {
		r.mu.Unlock()
		return 0, fmt.Errorf("shard: cannot drain the last member %s", name)
	}
	next, err := r.ring.Remove(name)
	var movements []Movement
	if err == nil {
		movements, err = Moved(r.ring, next)
	}
	if err != nil {
		r.mu.Unlock()
		return 0, err
	}
	to := make(map[string]*handle)
	for _, m := range movements {
		dst := r.shards[m.To]
		if dst == nil {
			r.mu.Unlock()
			return 0, fmt.Errorf("shard: movement destination %s has no attached client", m.To)
		}
		to[m.To] = dst
	}
	r.mig = &migration{next: next, moved: movements, to: to, dirty: make(map[uint64]struct{})}
	r.mu.Unlock()
	return r.runWindow(ctx, h)
}

// runWindow executes the open migration window: copy phase, flush,
// flip. drained is non-nil for a drain (the handle leaving the fleet).
func (r *Router) runWindow(ctx context.Context, drained *handle) (int, error) {
	r.mu.RLock()
	mig := r.mig
	ring := r.ring
	r.mu.RUnlock()

	// Enumerate the tracked keys that sit in moved arcs. The snapshot
	// is taken once; keys written after it are dual-written by the
	// serving path, which is exactly why the copy can be stale-skipped.
	r.keysMu.Lock()
	var work []uint64
	for k := range r.keys {
		p := ring.Point(k)
		for i := range mig.moved {
			if mig.moved[i].Contains(p) {
				work = append(work, k)
				break
			}
		}
	}
	r.keysMu.Unlock()
	sort.Slice(work, func(i, j int) bool { return work[i] < work[j] })

	moved, err := r.copyKeys(ctx, mig, ring, work)
	if err != nil {
		r.abortWindow(drained)
		return moved, err
	}

	// Barrier every shard that participated, so all copies and
	// dual-writes are resolved before ownership flips.
	flush := func(h *handle) error {
		if err := h.c.Flush(ctx); err != nil {
			return fmt.Errorf("shard: migration flush %s: %w", h.name, err)
		}
		return nil
	}
	for _, h := range mig.to {
		if err := flush(h); err != nil {
			r.abortWindow(drained)
			return moved, err
		}
	}

	// Flip: the new ring takes over atomically with respect to the
	// serving paths (they hold mu shared across route + enqueue).
	r.mu.Lock()
	r.ring = mig.next
	r.mig = nil
	if drained != nil {
		drained.retired = true
		delete(r.shards, drained.name)
		r.retired = append(r.retired, drained)
		if drained.m != nil {
			drained.m.attached.Set(0)
		}
	}
	r.rebuildLiveLocked()
	r.mu.Unlock()
	r.ctrMigrations.Add(1)

	if drained != nil {
		// Everything the router ever routed to the drained shard was
		// enqueued before the flip (enqueues hold mu shared); this final
		// barrier resolves it all, leaving the daemon idle.
		if err := drained.c.Flush(ctx); err != nil {
			return moved, fmt.Errorf("shard: drained-shard barrier %s: %w", drained.name, err)
		}
	}
	return moved, nil
}

// abortWindow closes a failed window without flipping: the old ring
// stays authoritative (it never stopped being), and a drain target
// stays in the fleet. Copied keys are harmless: their destinations only
// become authoritative after a successful flip.
func (r *Router) abortWindow(drained *handle) {
	r.mu.Lock()
	mig := r.mig
	r.mig = nil
	if mig != nil && drained == nil {
		// A failed add leaves the new shard attached but outside the
		// ring; retire it so its ledger stays visible.
		for name := range mig.to {
			if h := r.shards[name]; h != nil && !ringHas(r.ring, name) {
				delete(r.shards, name)
				h.retired = true
				r.retired = append(r.retired, h)
				if h.m != nil {
					h.m.attached.Set(0)
				}
			}
		}
	}
	r.rebuildLiveLocked()
	r.mu.Unlock()
}

// copyKeys relocates the enumerated keys: read the authoritative image
// from the current owner, write it to the destination — skipping any
// key a live dual-write already refreshed. Workers bound concurrency;
// every read waits for its completion before the destination write, so
// a copy never writes a word it has not fully received.
func (r *Router) copyKeys(ctx context.Context, mig *migration, ring *Ring, work []uint64) (int, error) {
	if len(work) == 0 {
		return 0, nil
	}
	var movedN atomic.Uint64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr
	}
	sem := make(chan struct{}, r.workers)
	var wg sync.WaitGroup
	for _, k := range work {
		if failed() != nil {
			break
		}
		k := k
		p := ring.Point(k)
		var mv *Movement
		for i := range mig.moved {
			if mig.moved[i].Contains(p) {
				mv = &mig.moved[i]
				break
			}
		}
		if mv == nil {
			continue
		}
		r.mu.RLock()
		src := r.shards[mv.From]
		r.mu.RUnlock()
		dst := mig.to[mv.To]
		if src == nil || dst == nil {
			fail(fmt.Errorf("shard: movement %s->%s lost a handle mid-window", mv.From, mv.To))
			break
		}
		mig.copyMu.Lock()
		_, dirty := mig.dirty[k]
		mig.copyMu.Unlock()
		if dirty {
			r.ctrSkipped.Add(1)
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(src, dst *handle) {
			defer func() { <-sem; wg.Done() }()
			img, err := r.readKey(ctx, src, k)
			if err != nil {
				fail(err)
				return
			}
			mig.copyMu.Lock()
			if _, dirty := mig.dirty[k]; dirty {
				mig.copyMu.Unlock()
				r.ctrSkipped.Add(1)
				return
			}
			err = dst.c.Write(ctx, k, img)
			mig.copyMu.Unlock()
			if err != nil {
				fail(fmt.Errorf("shard: relocating %#x to %s: %w", k, dst.name, err))
				return
			}
			movedN.Add(1)
			r.ctrMoved.Add(1)
			if dst.m != nil {
				dst.m.migratedIn.Inc()
			}
			if src.m != nil {
				src.m.migratedOut.Inc()
			}
		}(src, dst)
	}
	wg.Wait()
	return int(movedN.Load()), failed()
}

// readKey reads one word synchronously from a shard.
func (r *Router) readKey(ctx context.Context, h *handle, addr uint64) ([]byte, error) {
	type verdict struct {
		data []byte
		err  error
	}
	ch := make(chan verdict, 1)
	err := h.c.Read(ctx, addr, func(cm client.Completion) {
		// Completion data aliases the decoder buffer; copy before the
		// callback returns.
		ch <- verdict{data: append([]byte(nil), cm.Data...), err: cm.Err}
	})
	if err != nil {
		return nil, fmt.Errorf("shard: relocation read %#x from %s: %w", addr, h.name, err)
	}
	select {
	case v := <-ch:
		if v.err != nil {
			return nil, fmt.Errorf("shard: relocation read %#x from %s: %w", addr, h.name, v.err)
		}
		return v.data, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close closes every shard client, live and retired.
func (r *Router) Close() error {
	r.mu.Lock()
	hs := make([]*handle, 0, len(r.shards)+len(r.retired))
	for _, h := range r.shards {
		hs = append(hs, h)
	}
	hs = append(hs, r.retired...)
	r.shards = map[string]*handle{}
	r.retired = nil
	r.mu.Unlock()
	for _, h := range hs {
		h.c.Close()
	}
	return nil
}

// NodeState is the per-daemon view of fleet membership, served inside
// vpnmd's /statsz as the "shard" block so fleet state is inspectable
// per daemon: which member this daemon is, the ring it believes in, the
// arcs it owns and whether a migration window is open.
type NodeState struct {
	Name      string      `json:"name"`
	Members   []string    `json:"members"`
	VNodes    int         `json:"vnodes"`
	Seed      uint64      `json:"seed"`
	Ring      uint64      `json:"ring_fingerprint"`
	Ranges    []RangeJSON `json:"owned_ranges"`
	OwnedFrac float64     `json:"owned_fraction"`
	Migrating bool        `json:"migrating"`
	MovedIn   uint64      `json:"moved_keys_in"`
	MovedOut  uint64      `json:"moved_keys_out"`
}

// RangeJSON renders a point-space arc with hex endpoints.
type RangeJSON struct {
	Start string `json:"start"`
	End   string `json:"end"`
}

// Node builds the NodeState for one member of a ring. Counters (moved
// in/out, migrating) are the caller's to maintain; the ring geometry is
// computed here.
func Node(ring *Ring, name string) NodeState {
	st := NodeState{
		Name:    name,
		Members: append([]string(nil), ring.Members()...),
		VNodes:  ring.Config().VNodes,
		Seed:    ring.Config().Seed,
		Ring:    ring.Fingerprint(),
	}
	var width uint64
	ranges := ring.Ranges(name)
	for _, a := range ranges {
		st.Ranges = append(st.Ranges, RangeJSON{Start: fmt.Sprintf("%#016x", a.Start), End: fmt.Sprintf("%#016x", a.End)})
		width += a.Width()
	}
	if len(ranges) > 0 {
		st.OwnedFrac = float64(width) / (1 << 64)
		if width == 0 { // full circle (single member)
			st.OwnedFrac = 1
		}
	}
	return st
}
