package sim_test

import (
	"testing"

	"repro/internal/sim"
)

// TestNetChaos drives the full robustness stack — regulated two-tenant
// engine, TCP loopback, FlakyConn weather on both sides, one forced
// transport cut — and requires every invariant to hold: exactly-once
// victim reads, zero fixed-D violations, attacker throttled, victim
// not, and all three ledgers reconciling after drain.
func TestNetChaos(t *testing.T) {
	res, err := sim.RunNetChaos(sim.NetChaosOptions{
		Writes:        128,
		Reads:         384,
		AttackerReads: 768,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)
	if !res.Ok() {
		t.Fatalf("net-chaos invariants violated:\n%s", res)
	}
	if res.Net.Resets+res.Net.Drops == 0 {
		t.Log("note: no injected cuts this seed; resume path covered by the forced cut only")
	}
}
