package dram

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{Banks: 4, AccessLatency: 20, WordBytes: 8}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Banks: 4, AccessLatency: 20, WordBytes: 8}, true},
		{"one bank", Config{Banks: 1, AccessLatency: 1, WordBytes: 1}, true},
		{"zero banks", Config{Banks: 0, AccessLatency: 20, WordBytes: 8}, false},
		{"non power of two", Config{Banks: 3, AccessLatency: 20, WordBytes: 8}, false},
		{"zero latency", Config{Banks: 4, AccessLatency: 0, WordBytes: 8}, false},
		{"zero word", Config{Banks: 4, AccessLatency: 20, WordBytes: 0}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestModuleBankTiming(t *testing.T) {
	m, err := NewModule(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !m.BankFree(0, 0) {
		t.Fatal("fresh bank should be free")
	}
	doneAt, _ := m.IssueRead(0, 100, 0)
	if doneAt != 20 {
		t.Fatalf("doneAt = %d want 20", doneAt)
	}
	for now := uint64(1); now < 20; now++ {
		if m.BankFree(0, now) {
			t.Fatalf("bank 0 should be busy at %d", now)
		}
	}
	if !m.BankFree(0, 20) {
		t.Fatal("bank 0 should be free at L")
	}
	// Other banks are independent.
	if !m.BankFree(1, 5) {
		t.Fatal("bank 1 should be unaffected")
	}
	if m.Accesses() != 1 {
		t.Fatalf("Accesses = %d want 1", m.Accesses())
	}
}

func TestModuleIssueToBusyBankPanics(t *testing.T) {
	m, _ := NewModule(testConfig())
	m.IssueRead(2, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("issue to busy bank should panic")
		}
	}()
	m.IssueRead(2, 2, 5)
}

func TestModuleIssueOutOfRangePanics(t *testing.T) {
	m, _ := NewModule(testConfig())
	for _, bank := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bank %d should panic", bank)
				}
			}()
			m.IssueRead(bank, 0, 0)
		}()
	}
}

func TestModuleReadAfterWrite(t *testing.T) {
	m, _ := NewModule(testConfig())
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.IssueWrite(0, 42, data, 0)
	_, got := m.IssueRead(0, 42, 20)
	if !bytes.Equal(got, data) {
		t.Fatalf("read %v want %v", got, data)
	}
}

func TestStoreZeroDefault(t *testing.T) {
	s := NewStore(4)
	if got := s.Read(123); !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatalf("unwritten word = %v want zeros", got)
	}
	if s.Populated() != 0 {
		t.Fatal("Read must not populate")
	}
}

func TestStoreShortWritePads(t *testing.T) {
	s := NewStore(4)
	s.Write(1, []byte{0xAA, 0xBB, 0xCC, 0xDD})
	s.Write(1, []byte{0x11}) // short rewrite must zero the tail
	if got := s.Read(1); !bytes.Equal(got, []byte{0x11, 0, 0, 0}) {
		t.Fatalf("short write = %v want [11 0 0 0]", got)
	}
}

func TestStoreLongWritePanics(t *testing.T) {
	s := NewStore(2)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized write should panic")
		}
	}()
	s.Write(0, []byte{1, 2, 3})
}

func TestStoreReadWriteProperty(t *testing.T) {
	f := func(addrs []uint64, val uint8) bool {
		s := NewStore(8)
		want := make(map[uint64][]byte)
		for i, a := range addrs {
			b := []byte{val + uint8(i), uint8(i)}
			s.Write(a, b)
			w := make([]byte, 8)
			copy(w, b)
			want[a] = w
		}
		for a, w := range want {
			if !bytes.Equal(s.Read(a), w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) < 4 {
		t.Fatalf("want >= 4 presets, got %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Config.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", p.Name, err)
		}
		if p.Config.AccessLatency != 20 {
			t.Errorf("preset %s: L = %d, paper uses 20", p.Name, p.Config.AccessLatency)
		}
	}
	if p, ok := PresetByName("rdram-rimm"); !ok || p.Config.Banks != 512 {
		t.Errorf("rdram-rimm: ok=%v banks=%d want 512", ok, p.Config.Banks)
	}
	if _, ok := PresetByName("nope"); ok {
		t.Error("unknown preset should not resolve")
	}
}

func TestOpenRowModel(t *testing.T) {
	m, err := NewModule(Config{Banks: 4, AccessLatency: 20, WordBytes: 8, RowHitLatency: 4, RowWords: 8})
	if err != nil {
		t.Fatal(err)
	}
	// First access opens the row: full latency.
	doneAt, _ := m.IssueRead(0, 0, 0)
	if doneAt != 20 {
		t.Fatalf("cold access doneAt = %d want 20", doneAt)
	}
	// Same row (addr 1 within words 0..7): hit latency.
	doneAt, _ = m.IssueRead(0, 1, 20)
	if doneAt != 24 {
		t.Fatalf("row hit doneAt = %d want 24", doneAt)
	}
	// Different row (addr 8): full latency again.
	doneAt, _ = m.IssueRead(0, 8, 24)
	if doneAt != 44 {
		t.Fatalf("row miss doneAt = %d want 44", doneAt)
	}
	if m.RowHits() != 1 {
		t.Fatalf("row hits = %d want 1", m.RowHits())
	}
	// Banks have independent open rows.
	doneAt, _ = m.IssueRead(1, 1, 0)
	if doneAt != 20 {
		t.Fatalf("other bank cold access doneAt = %d want 20", doneAt)
	}
}

func TestOpenRowDisabledByDefault(t *testing.T) {
	m, _ := NewModule(testConfig())
	m.IssueRead(0, 0, 0)
	doneAt, _ := m.IssueRead(0, 1, 20)
	if doneAt != 40 {
		t.Fatalf("without open-row model doneAt = %d want 40", doneAt)
	}
	if m.RowHits() != 0 {
		t.Fatal("row hits counted with model disabled")
	}
}

func TestOpenRowConfigValidation(t *testing.T) {
	bad := []Config{
		{Banks: 4, AccessLatency: 20, WordBytes: 8, RowHitLatency: 21},
		{Banks: 4, AccessLatency: 20, WordBytes: 8, RowHitLatency: -1},
		{Banks: 4, AccessLatency: 20, WordBytes: 8, RowHitLatency: 4, RowWords: 3},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
