package server

import (
	"fmt"
	"io"
	"net/http"

	"repro/internal/telemetry"
)

// WriteMetrics renders the engine's ledger as Prometheus text series
// under the vpnmd_ prefix. The values come from one seqlock-consistent
// Snapshot, so the serving-level counters in a single scrape reconcile
// with each other (reads = completions + outstanding).
func (e *Engine) WriteMetrics(w io.Writer) error {
	s := e.Snapshot()
	for _, m := range []struct {
		name, kind, help string
		value            uint64
	}{
		{"vpnmd_cycle", "gauge", "Interface cycles completed by the engine clock.", s.Cycle},
		{"vpnmd_delay_cycles", "gauge", "The fixed delay D every read pays, in interface cycles.", uint64(s.Delay)},
		{"vpnmd_channels", "gauge", "Striped VPNM channels served.", uint64(s.Channels)},
		{"vpnmd_conns", "gauge", "Live client connections.", uint64(s.Conns)},
		{"vpnmd_sessions", "gauge", "Client sessions, attached or awaiting resume.", uint64(s.Sessions)},
		{"vpnmd_draining", "gauge", "1 while the engine refuses new work.", b2u(s.Draining)},
		{"vpnmd_outstanding_reads", "gauge", "Reads accepted whose completion has not yet been routed.", s.Outstanding},
		{"vpnmd_reads_total", "counter", "Reads accepted by the memory.", s.Reads},
		{"vpnmd_writes_total", "counter", "Writes accepted by the memory.", s.Writes},
		{"vpnmd_completions_total", "counter", "Read completions routed back to clients.", s.Completions},
		{"vpnmd_stalls_surfaced_total", "counter", "Controller stalls surfaced to clients as StatusStall.", s.Stalls},
		{"vpnmd_stall_retries_total", "counter", "Hold-and-retry re-presentations of stalled requests.", s.StallRetries},
		{"vpnmd_channel_busy_retries_total", "counter", "Same-cycle channel collisions absorbed by retrying.", s.Busy},
		{"vpnmd_throttled_total", "counter", "Tenant token refusals (one per cycle a head is held or surfaced).", s.Throttled},
		{"vpnmd_dropped_total", "counter", "Requests dropped after exhausting retry attempts.", s.Dropped},
		{"vpnmd_drain_refused_total", "counter", "Reads and writes refused with CodeDraining during drain.", s.DrainRefused},
		{"vpnmd_replays_served_total", "counter", "Replayed requests answered from the session replay cache.", s.ReplaysServed},
		{"vpnmd_replays_deduped_total", "counter", "Replayed requests swallowed because the original is still live.", s.ReplaysDeduped},
		{"vpnmd_uncorrectable_total", "counter", "Completions delivered with the uncorrectable-ECC flag.", s.Uncorrectable},
		{"vpnmd_flushes_total", "counter", "Flush barriers resolved.", s.Flushes},
		{"vpnmd_mem_reads_total", "counter", "Reads recorded by the striped memory itself.", s.MemReads},
		{"vpnmd_mem_writes_total", "counter", "Writes recorded by the striped memory itself.", s.MemWrites},
		{"vpnmd_mem_stalls_total", "counter", "Controller stalls recorded by the striped memory.", s.MemStalls},
		{"vpnmd_mem_channel_busy_total", "counter", "Channel-busy refusals recorded by the striped memory.", s.MemBusy},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			m.name, m.help, m.name, m.kind, m.name, m.value); err != nil {
			return err
		}
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// MetricsHandler serves the engine ledger plus every series in reg (the
// per-channel controller metrics the probes maintain) as one Prometheus
// text page — mount it at /metricsz. A nil reg serves the engine ledger
// alone.
func (e *Engine) MetricsHandler(reg *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := e.WriteMetrics(w); err != nil {
			return
		}
		if reg != nil {
			reg.WriteTo(w) //nolint:errcheck // best-effort diagnostics
		}
	})
}
