// Command vpnmfleet spawns and supervises an N-shard vpnmd fleet behind
// one shard.Router — the one-process dev harness for the cluster story.
//
//	vpnmfleet -shards 4 -statsz :7460
//
// spawns four engines on loopback listeners, partitions the address
// space over them with the deterministic ring, and serves fleet
// observability plus live membership control over HTTP:
//
//	GET  /statsz            fleet ledger, ring, per-shard engine ledgers
//	POST /drainz?shard=s2   live-drain a shard (relocates its keys, retires it)
//	POST /addz?shard=s9&addr=host:port   grow the fleet onto a running daemon
//
// With -join the fleet wraps daemons that are already running elsewhere
// instead of spawning its own:
//
//	vpnmfleet -join host1:7450,host2:7450 -statsz :7460
//
// Shard names in -join mode are the addresses themselves unless
// overridden as name=addr pairs. An optional -smoke N drives N writes
// and N verified reads through the router at startup and reports the
// fleet reconciliation, so "is the fleet healthy" is one flag away.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/multichannel"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// localShard is one spawned in-process daemon.
type localShard struct {
	name string
	eng  *server.Engine
	ln   net.Listener
}

func main() {
	var (
		shards   = flag.Int("shards", 4, "shards to spawn in-process (ignored with -join)")
		join     = flag.String("join", "", "comma-separated remote shards as addr or name=addr; replaces spawning")
		statsz   = flag.String("statsz", ":7460", "HTTP listen address for fleet /statsz and membership control (empty disables)")
		channels = flag.Int("channels", 2, "channels per spawned shard (power of two)")
		banks    = flag.Int("banks", core.DefaultBanks, "banks per channel per spawned shard")
		word     = flag.Int("word", 8, "word size in bytes (spawned shards)")
		window   = flag.Int("window", 256, "per-shard client window")
		vnodes   = flag.Int("vnodes", 0, "ring virtual nodes per member (0: library default)")
		ringSeed = flag.Uint64("ring-seed", 0, "ring permutation seed (0: library default)")
		seed     = flag.Uint64("seed", 1, "engine hash seed base (spawned shards)")
		session  = flag.Uint64("session", 1, "durable session id the router uses on every shard")
		smoke    = flag.Int("smoke", 0, "startup smoke workload: N writes + N verified reads through the router")
		ooo      = flag.Bool("ooo", false, "out-of-order cross-channel issue on every spawned shard engine")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request deadline on the shard clients")
	)
	flag.Parse()

	var locals []*localShard
	var specs []shard.Spec
	if *join != "" {
		for _, part := range strings.Split(*join, ",") {
			name, addr, ok := strings.Cut(part, "=")
			if !ok {
				name, addr = part, part
			}
			dialAddr := addr
			specs = append(specs, shard.Spec{Name: name, Dial: func() (net.Conn, error) {
				return net.Dial("tcp", dialAddr)
			}})
		}
	} else {
		if *shards < 1 {
			fatal(fmt.Errorf("-shards must be >= 1, got %d", *shards))
		}
		for i := 0; i < *shards; i++ {
			name := fmt.Sprintf("s%d", i)
			mem, err := multichannel.New(core.Config{Banks: *banks, WordBytes: *word}, *channels, *seed+uint64(i)*7919)
			if err != nil {
				fatal(err)
			}
			eng, err := server.New(server.Config{Mem: mem, Window: *window, OOO: *ooo})
			if err != nil {
				fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			go eng.Serve(ln) //nolint:errcheck // exits with the engine
			locals = append(locals, &localShard{name: name, eng: eng, ln: ln})
			addr := ln.Addr().String()
			specs = append(specs, shard.Spec{Name: name, Dial: func() (net.Conn, error) {
				return net.Dial("tcp", addr)
			}})
			fmt.Printf("vpnmfleet: shard %s on %s (D=%d)\n", name, addr, mem.Delay())
		}
	}

	reg := telemetry.NewRegistry()
	ctx := context.Background()
	router, err := shard.NewRouter(ctx, shard.RouterConfig{
		Ring: shard.RingConfig{VNodes: *vnodes, Seed: *ringSeed},
		Client: client.Config{
			Window:         *window,
			SessionID:      *session,
			RequestTimeout: *timeout,
			MaxReconnects:  -1,
			BackoffBase:    5 * time.Millisecond,
			BackoffMax:     200 * time.Millisecond,
		},
		Registry: reg,
	}, specs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("vpnmfleet: %d shards, ring fingerprint %#x\n", len(router.Members()), router.Ring().Fingerprint())

	// Spawned engines serve their fleet view in their own /statsz-style
	// block; refreshed on scrape so membership changes show up live.
	refreshNodeStates(router, locals)

	if *smoke > 0 {
		if err := runSmoke(ctx, router, *smoke); err != nil {
			fatal(err)
		}
		refreshNodeStates(router, locals)
	}

	if *statsz != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/statsz", func(w http.ResponseWriter, _ *http.Request) {
			serveFleetStatsz(w, router, locals)
		})
		mux.HandleFunc("/metricsz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			reg.WriteTo(w) //nolint:errcheck // best-effort diagnostics
		})
		mux.HandleFunc("/drainz", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			name := r.URL.Query().Get("shard")
			dctx, cancel := context.WithTimeout(r.Context(), 5*time.Minute)
			defer cancel()
			moved, err := router.DrainShard(dctx, name)
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			refreshNodeStates(router, locals)
			fmt.Fprintf(w, "drained %s: %d keys relocated; members now %v\n", name, moved, router.Members())
		})
		mux.HandleFunc("/addz", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			name, addr := r.URL.Query().Get("shard"), r.URL.Query().Get("addr")
			if name == "" || addr == "" {
				http.Error(w, "need ?shard=name&addr=host:port", http.StatusBadRequest)
				return
			}
			dctx, cancel := context.WithTimeout(r.Context(), 5*time.Minute)
			defer cancel()
			moved, err := router.AddShard(dctx, shard.Spec{Name: name, Dial: func() (net.Conn, error) {
				return net.Dial("tcp", addr)
			}})
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			refreshNodeStates(router, locals)
			fmt.Fprintf(w, "added %s: %d keys relocated; members now %v\n", name, moved, router.Members())
		})
		srv := &http.Server{Addr: *statsz, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "vpnmfleet: statsz:", err)
			}
		}()
		fmt.Printf("vpnmfleet: /statsz /metricsz /drainz /addz on %s\n", *statsz)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Println("vpnmfleet: flushing and draining")
	fctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := router.Flush(fctx); err != nil {
		fmt.Fprintln(os.Stderr, "vpnmfleet: flush:", err)
	}
	fc := router.Counters()
	router.Close()
	for _, l := range locals {
		snap, err := l.eng.Drain(fctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpnmfleet: drain", l.name+":", err)
		} else {
			fmt.Printf("vpnmfleet: %s drained clean: reads=%d writes=%d outstanding=%d\n",
				l.name, snap.Reads, snap.Writes, snap.Outstanding)
		}
		l.eng.Close()
		l.ln.Close()
	}
	fmt.Printf("vpnmfleet: fleet ledger: issued=%d completions=%d accepted-writes=%d fixed-D-violations=%d migrations=%d moved-keys=%d\n",
		fc.Total.Issued, fc.Total.Completions, fc.Total.AcceptedWrites, fc.Violations(), fc.Migrations, fc.MovedKeys)
}

// refreshNodeStates reinstalls each spawned engine's /statsz shard
// block from the router's current ring. Remote daemons maintain their
// own (via vpnmd -shard-* flags).
func refreshNodeStates(router *shard.Router, locals []*localShard) {
	ring := router.Ring()
	migrating := router.Migrating()
	for _, l := range locals {
		l := l
		if !ringHasMember(ring, l.name) {
			st := shard.NodeState{Name: l.name, Migrating: migrating}
			l.eng.SetShardState(func() any { return st })
			continue
		}
		st := shard.Node(ring, l.name)
		st.Migrating = migrating
		l.eng.SetShardState(func() any { return st })
	}
}

func ringHasMember(ring *shard.Ring, name string) bool {
	for _, m := range ring.Members() {
		if m == name {
			return true
		}
	}
	return false
}

// serveFleetStatsz renders the fleet-wide view: ledger, ring and every
// spawned shard's engine snapshot.
func serveFleetStatsz(w http.ResponseWriter, router *shard.Router, locals []*localShard) {
	type shardView struct {
		shard.ShardCounters
		Engine *server.Snapshot `json:"engine,omitempty"`
	}
	fc := router.Counters()
	views := make([]shardView, 0, len(fc.Shards))
	engines := make(map[string]*server.Snapshot, len(locals))
	for _, l := range locals {
		snap := l.eng.Snapshot()
		engines[l.name] = &snap
	}
	for _, sc := range fc.Shards {
		views = append(views, shardView{ShardCounters: sc, Engine: engines[sc.Name]})
	}
	ring := router.Ring()
	out := struct {
		Members     []string        `json:"members"`
		Ring        string          `json:"ring_fingerprint"`
		Migrating   bool            `json:"migrating"`
		Total       client.Counters `json:"total"`
		Migrations  uint64          `json:"migrations"`
		MovedKeys   uint64          `json:"moved_keys"`
		DoubleReads uint64          `json:"double_reads"`
		DualWrites  uint64          `json:"dual_writes"`
		Shards      []shardView     `json:"shards"`
	}{
		Members:     ring.Members(),
		Ring:        fmt.Sprintf("%#x", ring.Fingerprint()),
		Migrating:   router.Migrating(),
		Total:       fc.Total,
		Migrations:  fc.Migrations,
		MovedKeys:   fc.MovedKeys,
		DoubleReads: fc.DoubleReads,
		DualWrites:  fc.DualWrites,
		Shards:      views,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out) //nolint:errcheck // best-effort diagnostics
}

// runSmoke pushes a write/verify workload through the router and
// reports the reconciliation.
func runSmoke(ctx context.Context, router *shard.Router, n int) error {
	sctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	word := func(i uint64) []byte {
		b := make([]byte, 8)
		for j := range b {
			b[j] = byte(i + uint64(j)*131)
		}
		return b
	}
	start := time.Now()
	for i := uint64(0); i < uint64(n); i++ {
		if err := router.Write(sctx, i, word(i)); err != nil {
			return fmt.Errorf("smoke write %d: %w", i, err)
		}
	}
	if err := router.Flush(sctx); err != nil {
		return fmt.Errorf("smoke write flush: %w", err)
	}
	var bad, resolved atomic.Uint64
	for i := uint64(0); i < uint64(n); i++ {
		want := word(i)
		err := router.Read(sctx, i, func(cm client.Completion) {
			resolved.Add(1)
			if cm.Err != nil || !bytes.Equal(cm.Data, want) {
				bad.Add(1)
			}
		})
		if err != nil {
			return fmt.Errorf("smoke read %d: %w", i, err)
		}
	}
	if err := router.Flush(sctx); err != nil {
		return fmt.Errorf("smoke read flush: %w", err)
	}
	fc := router.Counters()
	if resolved.Load() != uint64(n) || bad.Load() != 0 || fc.Violations() != 0 {
		return fmt.Errorf("smoke failed: resolved %d/%d, %d bad, %d fixed-D violations",
			resolved.Load(), n, bad.Load(), fc.Violations())
	}
	fmt.Printf("vpnmfleet: smoke ok: %d writes + %d verified reads in %v, 0 fixed-D violations across %d shards\n",
		n, n, time.Since(start).Round(time.Millisecond), len(fc.Shards))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpnmfleet:", err)
	os.Exit(1)
}
