package server_test

import (
	"context"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/server"
	"repro/internal/wire"
)

func (h *harness) hello(id uint64, tenant string) {
	h.t.Helper()
	if err := h.enc.Hello(wire.Hello{SessionID: id, Tenant: tenant}); err != nil {
		h.t.Fatal(err)
	}
}

// await polls the engine ledger until cond holds or the deadline hits.
func await(t *testing.T, eng *server.Engine, what string, cond func(server.Snapshot) bool) server.Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := eng.Snapshot()
		if cond(s) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; ledger %+v", what, s)
		}
		time.Sleep(time.Millisecond)
	}
}

func testRegulator(t *testing.T, limits map[string]qos.Limit) *qos.Regulator {
	t.Helper()
	reg, err := qos.NewRegulator(qos.Config{Limits: limits})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestThrottleSurfaced: under DropWithAccounting, a tenant past its
// token budget sees StatusStall/CodeThrottled — one completion for the
// token the burst held, an immediate throttle verdict for the rest, and
// a ledger where throttles are counted apart from memory stalls.
func TestThrottleSurfaced(t *testing.T) {
	mem := testMem(t, smallCfg(), 2)
	reg := testRegulator(t, map[string]qos.Limit{"attacker": {Rate: 0.25, Burst: 1}})
	eng, err := server.New(server.Config{Mem: mem, QoS: reg, Policy: recovery.DropWithAccounting})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	h := newHarness(t, eng)
	h.hello(0, "attacker")

	const n = 8
	reqs := make([]wire.Request, 0, n)
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, wire.Request{Op: wire.OpRead, Seq: i, Addr: i * 64})
	}
	h.send(reqs...)
	h.send(wire.Request{Op: wire.OpFlush, Seq: 100})
	h.awaitReply(100)

	// The batch lands in one frame, so the first issue sweep sees all 8:
	// seq 0 takes the only token, seqs 1..7 are throttled that cycle.
	if comp := h.awaitComp(0); comp.DeliveredAt-comp.IssuedAt != uint64(mem.Delay()) {
		t.Fatalf("granted read broke fixed-D: %+v", comp)
	}
	for i := uint64(1); i < n; i++ {
		r := h.awaitReply(i)
		if r.Status != wire.StatusStall || r.Code != wire.CodeThrottled {
			t.Fatalf("reply %d = %+v, want StatusStall/CodeThrottled", i, r)
		}
	}
	s := eng.Snapshot()
	if s.Reads != 1 || s.Completions != 1 || s.Throttled != n-1 || s.Stalls != 0 {
		t.Fatalf("ledger %+v, want 1 read, 1 completion, %d throttled, 0 memory stalls", s, n-1)
	}
	tc := reg.Tenant("attacker").Counters()
	if tc.Issued != 1 || tc.Throttled != n-1 {
		t.Fatalf("tenant ledger %+v, want issued=1 throttled=%d", tc, n-1)
	}
}

// TestThrottleHeldThenServed: under the default hold policy a throttled
// head waits for the bucket to refill — every request completes, fixed-D
// intact, with the tenant charged one refusal per held cycle and one
// token per request.
func TestThrottleHeldThenServed(t *testing.T) {
	mem := testMem(t, smallCfg(), 2)
	reg := testRegulator(t, map[string]qos.Limit{"steady": {Rate: 0.5, Burst: 1}})
	eng, err := server.New(server.Config{Mem: mem, QoS: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	h := newHarness(t, eng)
	h.hello(0, "steady")

	const n = 16
	reqs := make([]wire.Request, 0, n)
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, wire.Request{Op: wire.OpRead, Seq: i, Addr: i * 64})
	}
	h.send(reqs...)
	h.send(wire.Request{Op: wire.OpFlush, Seq: 100})
	h.awaitReply(100)
	for i := uint64(0); i < n; i++ {
		comp := h.awaitComp(i)
		if comp.DeliveredAt-comp.IssuedAt != uint64(mem.Delay()) {
			t.Fatalf("read %d broke fixed-D: %+v", i, comp)
		}
	}
	s := eng.Snapshot()
	if s.Reads != n || s.Completions != n || s.Dropped != 0 {
		t.Fatalf("ledger %+v, want all %d reads completed", s, n)
	}
	if s.Throttled == 0 {
		t.Fatal("a rate-1/2 tenant burst-issuing 16 reads was never throttled")
	}
	tc := reg.Tenant("steady").Counters()
	if tc.Issued != n {
		t.Fatalf("tenant issued %d, want %d (one token per request, stall holds not re-charged)", tc.Issued, n)
	}
	if tc.Throttled != s.Throttled {
		t.Fatalf("tenant throttled %d, engine throttled %d — the two ledgers must agree", tc.Throttled, s.Throttled)
	}
}

// TestTenantIsolation: an unlimited victim shares the engine with a
// hard-limited attacker. The attacker's budget caps its executed reads;
// the victim completes everything, fixed-D intact.
func TestTenantIsolation(t *testing.T) {
	mem := testMem(t, smallCfg(), 2)
	reg := testRegulator(t, map[string]qos.Limit{"attacker": {Rate: 0.1, Burst: 2}})
	eng, err := server.New(server.Config{Mem: mem, QoS: reg, Policy: recovery.DropWithAccounting})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	atk := newHarness(t, eng)
	atk.hello(0, "attacker")
	vic := newHarness(t, eng)
	vic.hello(0, "victim")

	const n = 64
	var atkReqs, vicReqs []wire.Request
	for i := uint64(0); i < n; i++ {
		atkReqs = append(atkReqs, wire.Request{Op: wire.OpRead, Seq: i, Addr: i * 64})
		vicReqs = append(vicReqs, wire.Request{Op: wire.OpRead, Seq: i, Addr: (n + i) * 64})
	}
	atk.send(atkReqs...)
	vic.send(vicReqs...)
	atk.send(wire.Request{Op: wire.OpFlush, Seq: 1000})
	vic.send(wire.Request{Op: wire.OpFlush, Seq: 1000})

	vicDone := make(chan struct{})
	go func() {
		defer close(vicDone)
		for i := uint64(0); i < n; i++ {
			comp := vic.awaitComp(i)
			if comp.DeliveredAt-comp.IssuedAt != uint64(mem.Delay()) {
				vic.t.Errorf("victim read %d broke fixed-D: %+v", i, comp)
				return
			}
		}
		vic.awaitReply(1000)
	}()
	atkDone := 0
	for i := uint64(0); i < n; i++ {
		for {
			if _, ok := atk.replies[i]; ok {
				break
			}
			if _, ok := atk.comps[i]; ok {
				atkDone++
				break
			}
			atk.recvOne()
		}
	}
	atk.awaitReply(1000)
	<-vicDone

	s := eng.Snapshot()
	vc := reg.Tenant("victim").Counters()
	ac := reg.Tenant("attacker").Counters()
	if vc.Issued != n || vc.Throttled != 0 {
		t.Fatalf("victim ledger %+v, want all %d issued, none throttled", vc, n)
	}
	// The attacker cannot execute more than its provisioned budget:
	// burst + rate tokens per elapsed cycle (+1 for refill rounding).
	cap := uint64(float64(s.Cycle)*0.1) + 2 + 1
	if uint64(atkDone) != ac.Issued || ac.Issued > cap {
		t.Fatalf("attacker executed %d (tenant issued %d) over %d cycles, budget caps it at %d",
			atkDone, ac.Issued, s.Cycle, cap)
	}
	if ac.Throttled == 0 || s.Throttled != ac.Throttled+vc.Throttled {
		t.Fatalf("throttle ledgers disagree: engine %d, attacker %d, victim %d", s.Throttled, ac.Throttled, vc.Throttled)
	}
}

// TestSessionResume: a session named in a Hello survives its transport.
// The first conn dies before reading anything; a second conn with the
// same SessionID receives every parked verdict, and replayed requests
// are answered from the replay cache without re-executing.
func TestSessionResume(t *testing.T) {
	mem := testMem(t, smallCfg(), 2)
	eng, err := server.New(server.Config{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	word := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	h1 := newHarness(t, eng)
	h1.hello(77, "tenant-a")
	h1.send(
		wire.Request{Op: wire.OpWrite, Seq: 1, Addr: 0xbeef, Data: word},
		wire.Request{Op: wire.OpRead, Seq: 2, Addr: 0xbeef},
		wire.Request{Op: wire.OpFlush, Seq: 3},
	)
	// Wait for the engine to resolve everything, then kill the transport
	// without reading a byte: all three verdicts are parked output.
	await(t, eng, "flush resolved", func(s server.Snapshot) bool { return s.Flushes == 1 })
	h1.nc.Close()
	await(t, eng, "conn detached", func(s server.Snapshot) bool { return s.Conns == 0 })
	if s := eng.Snapshot(); s.Sessions != 1 {
		t.Fatalf("resumable session vanished with its conn: %+v", s)
	}

	// Reconnect as the same session: the parked verdicts flush in order,
	// and replaying both requests (the client cannot know they resolved)
	// re-emits the cached verdicts without touching the memory.
	h2 := newHarness(t, eng)
	h2.hello(77, "tenant-a")
	if r := h2.awaitReply(1); r.Status != wire.StatusAccepted {
		t.Fatalf("parked write accept = %+v", r)
	}
	comp := h2.awaitComp(2)
	if string(comp.Data) != string(word) {
		t.Fatalf("parked completion data %x, want %x", comp.Data, word)
	}
	if r := h2.awaitReply(3); r.Status != wire.StatusFlushed {
		t.Fatalf("parked flush reply = %+v", r)
	}

	h2.replies = map[uint64]wire.Reply{}
	h2.comps = map[uint64]wire.Completion{}
	h2.send(
		wire.Request{Op: wire.OpWrite, Seq: 1, Addr: 0xbeef, Data: word},
		wire.Request{Op: wire.OpRead, Seq: 2, Addr: 0xbeef},
	)
	if r := h2.awaitReply(1); r.Status != wire.StatusAccepted {
		t.Fatalf("replayed write accept = %+v", r)
	}
	replayed := h2.awaitComp(2)
	if string(replayed.Data) != string(word) || replayed.IssuedAt != comp.IssuedAt || replayed.DeliveredAt != comp.DeliveredAt {
		t.Fatalf("replayed completion %+v, want cached copy of %+v", replayed, comp)
	}
	s := eng.Snapshot()
	if s.Reads != 1 || s.Writes != 1 || s.Completions != 1 {
		t.Fatalf("replays re-executed: %+v, want 1 read / 1 write / 1 completion", s)
	}
	if s.ReplaysServed != 2 {
		t.Fatalf("replay cache served %d, want 2", s.ReplaysServed)
	}
}

// TestWriteTimeoutParksOutput: a peer that stops reading trips the
// per-frame write deadline; the conn detaches but the session keeps the
// undelivered completion for the next transport.
func TestWriteTimeoutParksOutput(t *testing.T) {
	mem := testMem(t, smallCfg(), 2)
	eng, err := server.New(server.Config{Mem: mem, WriteTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	cli, srv := net.Pipe()
	defer cli.Close()
	if err := eng.ServeConn(srv); err != nil {
		t.Fatal(err)
	}
	enc := wire.NewEncoder(cli)
	if err := enc.Hello(wire.Hello{SessionID: 5}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Requests(0, []wire.Request{{Op: wire.OpRead, Seq: 1, Addr: 64}}); err != nil {
		t.Fatal(err)
	}
	// Never read: the server's writer wedges on the pipe until the
	// deadline detaches it. The completion must survive the detach.
	await(t, eng, "write deadline detach", func(s server.Snapshot) bool {
		return s.Conns == 0 && s.Completions == 1
	})

	h := newHarness(t, eng)
	h.hello(5, "")
	if comp := h.awaitComp(1); comp.DeliveredAt-comp.IssuedAt != uint64(mem.Delay()) {
		t.Fatalf("resumed completion %+v broke fixed-D", comp)
	}
}

// TestDrain: draining refuses new reads and writes with CodeDraining,
// keeps flush and stats alive, finishes in-flight work, flips /healthz
// to 503, and Drain returns a settled ledger.
func TestDrain(t *testing.T) {
	mem := testMem(t, smallCfg(), 2)
	eng, err := server.New(server.Config{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	h := newHarness(t, eng)

	if rec := httptest.NewRecorder(); true {
		eng.HealthzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code != 200 {
			t.Fatalf("healthz before drain = %d, want 200", rec.Code)
		}
	}

	word := []byte{1, 1, 2, 3, 5, 8, 13, 21}
	h.send(
		wire.Request{Op: wire.OpWrite, Seq: 1, Addr: 64, Data: word},
		wire.Request{Op: wire.OpRead, Seq: 2, Addr: 64},
	)
	h.awaitComp(2)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := eng.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if final.Outstanding != 0 || final.Reads != 1 || final.Writes != 1 || final.Completions != 1 || !final.Draining {
		t.Fatalf("drain ledger %+v, want settled pipeline", final)
	}
	if !eng.Draining() {
		t.Fatal("engine not reporting drain mode")
	}

	rec := httptest.NewRecorder()
	eng.HealthzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("healthz during drain = %d, want 503", rec.Code)
	}

	// New work is refused with the terminal draining code; flush and
	// stats still answer so clients can settle their ledgers.
	h.send(
		wire.Request{Op: wire.OpRead, Seq: 10, Addr: 64},
		wire.Request{Op: wire.OpWrite, Seq: 11, Addr: 128, Data: word},
		wire.Request{Op: wire.OpFlush, Seq: 12},
		wire.Request{Op: wire.OpStats, Seq: 13},
	)
	for _, seq := range []uint64{10, 11} {
		r := h.awaitReply(seq)
		if r.Status != wire.StatusDropped || r.Code != wire.CodeDraining {
			t.Fatalf("reply %d during drain = %+v, want StatusDropped/CodeDraining", seq, r)
		}
	}
	if r := h.awaitReply(12); r.Status != wire.StatusFlushed {
		t.Fatalf("flush during drain = %+v", r)
	}
	if st := h.awaitStats(13); st.Reads != 1 {
		t.Fatalf("stats during drain = %+v", st)
	}
	if s := eng.Snapshot(); s.DrainRefused != 2 {
		t.Fatalf("drain refused %d, want 2", s.DrainRefused)
	}

	// A second Drain observes the same completed drain immediately, and
	// new connections are turned away.
	if _, err := eng.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	cn, sn := net.Pipe()
	defer cn.Close()
	if err := eng.ServeConn(sn); err == nil {
		t.Fatal("ServeConn accepted a connection during drain")
	}
}
