package queue

import (
	"testing"
	"testing/quick"
)

func TestDelayBufferExactLatency(t *testing.T) {
	for _, d := range []int{1, 2, 7, 64} {
		b := NewDelayBuffer[int](d)
		if b.Delay() != d {
			t.Fatalf("Delay() = %d want %d", b.Delay(), d)
		}
		// Write step numbers for 5*d steps; each must emerge exactly d later.
		for step := 0; step < 5*d; step++ {
			out, ok := b.Step(step, true)
			if step < d {
				if ok {
					t.Fatalf("d=%d: step %d returned valid entry %d before warm-up", d, step, out)
				}
				continue
			}
			if !ok || out != step-d {
				t.Fatalf("d=%d: step %d returned %d,%v want %d,true", d, step, out, ok, step-d)
			}
		}
	}
}

func TestDelayBufferInvalidSlots(t *testing.T) {
	d := 4
	b := NewDelayBuffer[string](d)
	// Valid entry only every third step.
	var got []string
	for step := 0; step < 30; step++ {
		in := ""
		valid := step%3 == 0
		if valid {
			in = "v"
		}
		out, ok := b.Step(in, valid)
		if ok {
			got = append(got, out)
			// Validity must follow the same 1-in-3 cadence shifted by d.
			if (step-d)%3 != 0 {
				t.Fatalf("step %d: unexpected valid output", step)
			}
		}
	}
	if len(got) != (30-d+2)/3 {
		t.Fatalf("valid outputs = %d want %d", len(got), (30-d+2)/3)
	}
}

func TestDelayBufferPendingCount(t *testing.T) {
	b := NewDelayBuffer[int](10)
	for i := 0; i < 5; i++ {
		b.Step(i, true)
	}
	if got := b.Pending(); got != 5 {
		t.Fatalf("Pending = %d want 5", got)
	}
	for i := 0; i < 5; i++ {
		b.Step(0, false)
	}
	if got := b.Pending(); got != 5 {
		t.Fatalf("Pending after invalid writes = %d want 5 (entries not yet due)", got)
	}
	for i := 0; i < 5; i++ {
		b.Step(0, false)
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d want 0", got)
	}
	if b.Steps() != 15 {
		t.Fatalf("Steps = %d want 15", b.Steps())
	}
}

func TestDelayBufferPanicsOnBadLatency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDelayBuffer(0) should panic")
		}
	}()
	NewDelayBuffer[int](0)
}

// Property: for any latency and any validity pattern, output at step s
// equals input at step s-d with the same validity.
func TestDelayBufferProperty(t *testing.T) {
	f := func(dRaw uint8, pattern []bool) bool {
		d := int(dRaw%32) + 1
		b := NewDelayBuffer[int](d)
		for step, valid := range pattern {
			out, ok := b.Step(step, valid)
			if step < d {
				if ok {
					return false
				}
				continue
			}
			if ok != pattern[step-d] {
				return false
			}
			if ok && out != step-d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
