package sim

import (
	"context"
	"fmt"

	"repro/internal/parallel"
	"repro/internal/workload"
)

// GridRun names one independent simulation in a parameter grid: a
// factory for the memory under test, a factory for its workload (each
// run needs its own generator — generators are stateful), and the run
// options. Factories run on pool workers, so they must not share
// mutable state across runs.
type GridRun struct {
	Name string
	Mem  func() (Memory, error)
	Gen  func() workload.Generator
	Opts Options
}

// GridResult pairs a grid run's result with the memory that produced
// it, so callers can pull controller-specific statistics (bus
// utilization, stall breakdowns) after the sweep.
type GridResult struct {
	Name string
	Mem  Memory
	Res  *Result
}

// RunGrid executes independent simulation runs across a bounded worker
// pool and returns their results in input order — the grid is
// embarrassingly parallel because every run owns its memory and its
// generator, so the worker count changes only the wall clock, never a
// result. workers <= 0 selects GOMAXPROCS.
func RunGrid(ctx context.Context, runs []GridRun, workers int) ([]GridResult, error) {
	return parallel.Sweep(ctx, len(runs), parallel.Options{Workers: workers},
		func(_ context.Context, i int) (GridResult, error) {
			r := runs[i]
			if r.Mem == nil || r.Gen == nil {
				return GridResult{}, fmt.Errorf("sim: grid run %q needs Mem and Gen factories", r.Name)
			}
			mem, err := r.Mem()
			if err != nil {
				return GridResult{}, fmt.Errorf("sim: grid run %q: %w", r.Name, err)
			}
			res := Run(mem, r.Gen(), r.Opts)
			return GridResult{Name: r.Name, Mem: mem, Res: res}, nil
		})
}

// RunChaosTrials runs `trials` independent chaos runs across a bounded
// worker pool, with mk building the (fully self-contained) options for
// each trial — typically deriving per-trial fault and workload seeds
// with parallel.Seed. Results are in trial order at any worker count.
// The first failing trial cancels the batch.
func RunChaosTrials(ctx context.Context, trials, workers int, mk func(trial int) ChaosOptions) ([]*ChaosResult, error) {
	return parallel.Sweep(ctx, trials, parallel.Options{Workers: workers},
		func(_ context.Context, i int) (*ChaosResult, error) {
			return RunChaos(mk(i))
		})
}
