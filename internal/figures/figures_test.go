package figures

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestFig4Shape(t *testing.T) {
	ks, series := Fig4()
	if len(series) != 5 {
		t.Fatalf("series = %d want 5 (the paper's five B/Q pairings)", len(series))
	}
	for _, s := range series {
		if len(s.Y) != len(ks) {
			t.Fatalf("%s: %d points for %d x-values", s.Label, len(s.Y), len(ks))
		}
		// Monotone non-decreasing in K, capped at 1e16.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("%s not monotone at K=%d", s.Label, ks[i])
			}
			if s.Y[i] > analysis.MTSCap {
				t.Fatalf("%s exceeds the 1e16 cap", s.Label)
			}
		}
	}
	// "The curve for B = 64 follows very closely to the curve for B=32"
	// while small bank counts need far larger K: at K=32, B=32 must be
	// in business (>=1e10) and B=4 must be hopeless (<1e8).
	at := func(label string, k int) float64 {
		for _, s := range series {
			if s.Label == label {
				for i, kk := range ks {
					if kk == k {
						return s.Y[i]
					}
				}
			}
		}
		t.Fatalf("missing %s at K=%d", label, k)
		return 0
	}
	if v := at("B=32,Q=8", 32); v < 1e10 {
		t.Errorf("B=32 K=32 MTS = %.3g, paper shows ~1e12", v)
	}
	if v := at("B=4,Q=12", 32); v > 1e8 {
		t.Errorf("B=4 K=32 MTS = %.3g, should be far below B=32", v)
	}
	if b32, b64 := at("B=32,Q=8", 64), at("B=64,Q=8", 64); b64 < b32 {
		t.Errorf("B=64 (%.3g) should be at or above B=32 (%.3g)", b64, b32)
	}
}

func TestFig5Render(t *testing.T) {
	s, err := Fig5(6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "fail") {
		t.Fatal("matrix missing fail state")
	}
	// L=3, Q=2: 7 transient states (0..6) + fail = 8 rows.
	lines := strings.Count(s, "\n")
	if lines != 2+8 {
		t.Fatalf("rendered %d lines want 10", lines)
	}
	// The Figure 5 probability: 1/B = 0.167 appears for arrivals.
	if !strings.Contains(s, "0.167") {
		t.Fatal("arrival probability 1/6 missing from render")
	}
}

func TestFig6Shape(t *testing.T) {
	qs, series := Fig6()
	if len(series) != 5 {
		t.Fatalf("series = %d want 5", len(series))
	}
	last := func(label string) float64 {
		for _, s := range series {
			if s.Label == label {
				return s.Y[len(s.Y)-1]
			}
		}
		t.Fatalf("missing %s", label)
		return 0
	}
	_ = qs
	// Section 5.2's claims: B<32 tops out low; B=32 and B=64 both reach
	// astronomic MTS at Q=64.
	if v := last("B=4"); v > 1e6 {
		t.Errorf("B=4 final MTS %.3g, should be tiny", v)
	}
	if v := last("B=8"); v > 1e6 {
		t.Errorf("B=8 final MTS %.3g, should be tiny", v)
	}
	if v := last("B=32"); v < 1e12 {
		t.Errorf("B=32 final MTS %.3g, paper reports ~1e14", v)
	}
	if v := last("B=64"); v < 1e12 {
		t.Errorf("B=64 final MTS %.3g, paper reports ~1e14", v)
	}
}

func TestFig7FrontiersOrdered(t *testing.T) {
	fronts := Fig7([]float64{1.0, 1.3})
	for r, front := range fronts {
		if len(front) == 0 {
			t.Fatalf("empty frontier for R=%.1f", r)
		}
		for i := 1; i < len(front); i++ {
			if front[i].AreaMM2 <= front[i-1].AreaMM2 || front[i].MTS <= front[i-1].MTS {
				t.Fatalf("R=%.1f frontier not increasing at %d", r, i)
			}
		}
	}
	// Figure 7's headline: R=1.3 reaches a 1-second MTS (1e9) around
	// 30 mm^2, while R=1.0 never gets close at any area.
	best := func(r float64, budget float64) float64 {
		b := 0.0
		for _, p := range fronts[r] {
			if p.AreaMM2 <= budget && p.MTS > b {
				b = p.MTS
			}
		}
		return b
	}
	if v := best(1.3, 35); v < 1e9 {
		t.Errorf("R=1.3 best under 35mm^2 = %.3g, paper shows ~1e9+ near 30mm^2", v)
	}
	if v := best(1.0, 60); v > 1e6 {
		t.Errorf("R=1.0 best = %.3g, paper shows R=1.0 stuck at low MTS", v)
	}
}

func TestTable2TracksPaper(t *testing.T) {
	rows := Table2()
	if len(rows) != 8 {
		t.Fatalf("rows = %d want 8", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.AreaMM2-r.PaperArea) > r.PaperArea*0.10 {
			t.Errorf("R=%.1f Q=%d: area %.1f vs paper %.1f", r.R, r.Q, r.AreaMM2, r.PaperArea)
		}
		if math.Abs(r.EnergyNJ-r.PaperEnergy) > r.PaperEnergy*0.10 {
			t.Errorf("R=%.1f Q=%d: energy %.2f vs paper %.2f", r.R, r.Q, r.EnergyNJ, r.PaperEnergy)
		}
		// MTS shape: within ~1.5 decades of the published value and
		// strictly increasing down the table within each R group. When
		// our combined model caps at 1e16 the comparison degenerates;
		// any published value in the astronomically-safe regime (>1e13,
		// a day at 1 GHz) is accepted there.
		ratio := r.MTS / r.PaperMTS
		capped := r.MTS >= analysis.MTSCap && r.PaperMTS >= 1e13
		if !capped && (ratio < 1.0/30 || ratio > 30) {
			t.Errorf("R=%.1f Q=%d: MTS %.3g vs paper %.3g (off > x30)", r.R, r.Q, r.MTS, r.PaperMTS)
		}
	}
	for i := 1; i < 4; i++ {
		if rows[i].MTS <= rows[i-1].MTS {
			t.Errorf("R=1.3 MTS not increasing at row %d", i)
		}
	}
}

func TestReassemblySummary(t *testing.T) {
	s := Reassembly()
	if s.AccessesPerChunk != 5 {
		t.Errorf("accesses per chunk %d want 5", s.AccessesPerChunk)
	}
	if math.Abs(s.ThroughputGbps-40.96) > 0.01 {
		t.Errorf("throughput %.2f want ~41 (paper rounds to 40)", s.ThroughputGbps)
	}
	if s.StagingSRAMBytes != 72<<10 {
		t.Errorf("staging SRAM %d want 72KB", s.StagingSRAMBytes)
	}
}

func TestWriteSeriesTSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesTSV(&buf, "K", []int{1, 2}, []Series{{Label: "a", Y: []float64{10, 20}}})
	if err != nil {
		t.Fatal(err)
	}
	want := "K\ta\n1\t10\n2\t20\n"
	if buf.String() != want {
		t.Fatalf("TSV = %q want %q", buf.String(), want)
	}
}

func TestValidationBankQueue(t *testing.T) {
	row, err := ValidateBankQueue(8, 8, 9, 200_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r := row.Ratio(); r < 0.2 || r > 5 {
		t.Fatalf("bank queue sim/math ratio = %.2f (analytic %.4g, measured %.4g)", r, row.AnalyticMTS, row.MeasuredMTS)
	}
}

func TestValidationDelayBuffer(t *testing.T) {
	row, err := ValidateDelayBuffer(32, 24, 8, 9, 200_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r := row.Ratio(); r < 1.0/30 || r > 30 {
		t.Fatalf("delay buffer sim/math ratio = %.2f (analytic %.4g, measured %.4g)", r, row.AnalyticMTS, row.MeasuredMTS)
	}
}

func TestExactTailAtLeastPaperBound(t *testing.T) {
	// The union bound overstates the stall probability, so the exact
	// MTS is never below the paper's.
	for _, k := range []int{8, 16, 24, 32, 48} {
		paper := analysis.DelayBufferMTS(32, k, 360)
		exact := analysis.DelayBufferMTSExact(32, k, 360)
		if exact < paper {
			t.Errorf("K=%d: exact MTS %.4g below paper bound %.4g", k, exact, paper)
		}
	}
}

func TestEfficiencyExperiment(t *testing.T) {
	rows, err := Efficiency(30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]EfficiencyRow{}
	for _, r := range rows {
		byKey[r.Controller+"/"+r.Workload] = r
	}
	// Section 3.1's story: a few-bank conventional memory delivers a
	// fraction of peak under random traffic (the paper's measured 37-60%
	// band for commodity parts), while VPNM delivers nearly full rate.
	conv4 := byKey["conventional, 4 banks (SDRAM-class)/uniform"]
	if conv4.Throughput < 0.15 || conv4.Throughput > 0.80 {
		t.Errorf("4-bank conventional uniform throughput %.2f outside the plausible band", conv4.Throughput)
	}
	vp := byKey["VPNM, 32 banks/uniform"]
	if vp.Throughput < 0.95 {
		t.Errorf("VPNM uniform throughput %.2f, want ~1 (bandwidth 'almost equal to no conflicts')", vp.Throughput)
	}
	if vp.Throughput < conv4.Throughput+0.2 {
		t.Errorf("VPNM (%.2f) should far outdeliver the 4-bank conventional part (%.2f)", vp.Throughput, conv4.Throughput)
	}
	// Sequential traffic is the conventional part's best case (row hits)
	// and must beat its own uniform number.
	seq4 := byKey["conventional, 4 banks (SDRAM-class)/sequential"]
	if seq4.Throughput <= conv4.Throughput {
		t.Errorf("open-row sequential (%.2f) should beat uniform (%.2f) on the conventional part", seq4.Throughput, conv4.Throughput)
	}
	// VPNM is pattern-blind: sequential and uniform within a whisker.
	vpSeq := byKey["VPNM, 32 banks/sequential"]
	if d := vp.Throughput - vpSeq.Throughput; d > 0.05 || d < -0.05 {
		t.Errorf("VPNM throughput should be pattern-independent: uniform %.3f vs sequential %.3f", vp.Throughput, vpSeq.Throughput)
	}
}
