package sim_test

// The loopback chaos trial: the full client → wire → vpnmd engine →
// multichannel memory stack, with the fault injector corrupting DRAM
// underneath, proving the invariants the in-process chaos harness
// checks survive the network layer:
//
//   - every read completes exactly D server cycles after issue, fault
//     injection, stalls and retries notwithstanding;
//   - data is correct unless the completion is flagged uncorrectable;
//   - every request resolves exactly once;
//   - the client's ledger reconciles against the engine's snapshot.

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/multichannel"
	"repro/internal/recovery"
	"repro/internal/server"
)

func TestLoopbackChaos(t *testing.T) {
	inj, err := fault.New(fault.Config{
		Seed:          7,
		SingleBitRate: 0.02,
		DoubleBitRate: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Banks: 8, QueueDepth: 8, DelayRows: 64, WordBytes: 8, Fault: inj}
	mem, err := multichannel.New(cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The server surfaces every stall; the client's RetryNextCycle
	// policy re-issues until the read lands — the split-brain version of
	// the in-process Retrier.
	eng, err := server.New(server.Config{Mem: mem, Policy: recovery.DropWithAccounting})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cn, sn := net.Pipe()
	if err := eng.ServeConn(sn); err != nil {
		t.Fatal(err)
	}
	c := client.New(cn, client.Config{Window: 128, Policy: recovery.RetryNextCycle})
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := c.Stats(ctx); err != nil { // arm the client's fixed-D check
		t.Fatal(err)
	}

	// Phase 1: populate write-once addresses. (Write-once matters:
	// client-side stall retries may reorder requests, which is only
	// harmless when no address is written twice.)
	const words = 256
	rng := rand.New(rand.NewPCG(42, 99))
	model := make(map[uint64][]byte, words)
	addrs := make([]uint64, 0, words)
	for len(model) < words {
		a := rng.Uint64N(1 << 28)
		if _, dup := model[a]; dup {
			continue
		}
		w := make([]byte, 8)
		for i := range w {
			w[i] = byte(rng.Uint64())
		}
		model[a] = w
		addrs = append(addrs, a)
		if err := c.Write(ctx, a, w); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Phase 2: hammer random reads through the faulty memory.
	const reads = 4000
	var mu sync.Mutex
	var resolved, flagged, dropped, corrupt, multi int
	for i := 0; i < reads; i++ {
		addr := addrs[rng.IntN(len(addrs))]
		want := model[addr]
		seen := false
		err := c.Read(ctx, addr, func(cm client.Completion) {
			mu.Lock()
			defer mu.Unlock()
			if seen {
				multi++
				return
			}
			seen = true
			resolved++
			switch {
			case cm.Err == nil:
				if !bytes.Equal(cm.Data, want) {
					corrupt++
				}
			case errors.Is(cm.Err, core.ErrUncorrectable):
				flagged++ // on time but untrusted — data deliberately unchecked
			default:
				dropped++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if resolved != reads || multi != 0 {
		t.Fatalf("%d/%d reads resolved, %d resolved twice", resolved, reads, multi)
	}
	if corrupt != 0 {
		t.Fatalf("%d unflagged corrupt words crossed the wire", corrupt)
	}
	if flagged == 0 {
		t.Fatal("a 1%% double-bit rate over 4000 reads injected nothing — injector not wired through")
	}

	ctr := c.Counters()
	if ctr.LatencyViolations != 0 {
		t.Fatalf("%d fixed-D violations under chaos", ctr.LatencyViolations)
	}
	if ctr.Uncorrectable != uint64(flagged) || ctr.Drops != uint64(dropped) {
		t.Fatalf("client ledger %+v disagrees with callbacks (flagged=%d dropped=%d)", ctr, flagged, dropped)
	}
	if got := ctr.Completions + ctr.AcceptedWrites + ctr.Drops; got != ctr.Issued {
		t.Fatalf("client ledger leaks: issued=%d but completions+accepts+drops=%d", ctr.Issued, got)
	}

	// Reconcile against the engine's ledger.
	snap := eng.Snapshot()
	if snap.Outstanding != 0 {
		t.Fatalf("engine still has %d reads outstanding after Flush", snap.Outstanding)
	}
	if snap.Completions != ctr.Completions {
		t.Fatalf("completions: engine %d, client %d", snap.Completions, ctr.Completions)
	}
	if snap.Uncorrectable != ctr.Uncorrectable {
		t.Fatalf("uncorrectable: engine %d, client %d", snap.Uncorrectable, ctr.Uncorrectable)
	}
	if snap.Writes != ctr.AcceptedWrites {
		t.Fatalf("writes: engine accepted %d, client saw %d accepts", snap.Writes, ctr.AcceptedWrites)
	}
	if snap.Stalls != ctr.Stalls.Total() {
		t.Fatalf("stalls: engine surfaced %d, client counted %d", snap.Stalls, ctr.Stalls.Total())
	}
	t.Logf("loopback chaos: %d reads, %d flagged uncorrectable, %d stalls surfaced, %d retries, %d cycles",
		reads, flagged, snap.Stalls, ctr.Retries, snap.Cycle)
}
