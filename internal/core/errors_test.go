package core

import (
	"errors"
	"fmt"
	"testing"
)

// TestStallErrorTaxonomy pins the error taxonomy clients dispatch on:
// every ErrStall* sentinel satisfies errors.Is(err, ErrStall) — even
// when wrapped again by a caller — while the protocol and data errors
// do not, so recovery policies never retry a non-stall.
func TestStallErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		stall bool
	}{
		{"delay-buffer", ErrStallDelayBuffer, true},
		{"bank-queue", ErrStallBankQueue, true},
		{"write-buffer", ErrStallWriteBuffer, true},
		{"counter", ErrStallCounter, true},
		{"stall sentinel itself", ErrStall, true},
		{"wrapped stall", fmt.Errorf("bank 3: %w", ErrStallBankQueue), true},
		{"second request", ErrSecondRequest, false},
		{"uncorrectable", ErrUncorrectable, false},
		{"data too long", errDataTooLong(9, 8), false},
		{"nil", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := errors.Is(tc.err, ErrStall); got != tc.stall {
				t.Errorf("errors.Is(%v, ErrStall) = %v want %v", tc.err, got, tc.stall)
			}
			if got := IsStall(tc.err); got != tc.stall {
				t.Errorf("IsStall(%v) = %v want %v", tc.err, got, tc.stall)
			}
		})
	}
	// The specific sentinels stay distinguishable from each other.
	specific := []error{ErrStallDelayBuffer, ErrStallBankQueue, ErrStallWriteBuffer, ErrStallCounter}
	for i, a := range specific {
		for j, b := range specific {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("errors.Is(%v, %v) = %v", a, b, errors.Is(a, b))
			}
		}
	}
}
