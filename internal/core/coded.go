package core

// This file is the controller half of the XOR-parity bank-group design
// (package coded holds the geometry, parity/shadow state and per-cycle
// port ledger). It adds a multi-port arbitration path to the interface:
// each cycle up to Coded.K reads are granted, each covered in one of
// three ways, tried in this order per request:
//
//  1. merge  — the address CAM hits a live delay storage buffer row;
//     the playback rides the existing fill and costs no read port.
//  2. direct — the home bank's read port is free; the read takes the
//     ordinary bank-controller path (queue, DRAM access, DSB row).
//  3. decode — the home bank's port is busy (or its resources are
//     exhausted), but the group's parity port and all n-1 sibling bank
//     ports are free; the word is reconstructed as parity XOR siblings
//     at accept time and held in a preallocated decode row until its
//     delivery slot D cycles later.
//
// The decode word comes from the write-through shadow, which records
// the memory contents as of write admission. That is exactly what the
// uncoded path delivers — a read accepted on cycle t returns the value
// after every write accepted before it (the CAM's addrValid
// invalidation plus per-bank FIFO ordering guarantee it) — so the two
// paths are bit-identical, which the coded differential subtests and
// FuzzParityReconstruct pin. The one modelled difference: a decode
// bypasses the bank machinery and with it the fault/ECC hook, so
// parity-decoded completions never carry ErrUncorrectable.

import "repro/internal/coded"

// codedState bundles the controller's coded-mode state: geometry
// shortcuts for the stripe/lane address split, the parity+shadow banks,
// the per-cycle port ledger, and a freelist of decode rows sized so the
// steady state never allocates (at most K decodes per cycle, each held
// D cycles).
type codedState struct {
	geo       coded.Geometry
	laneBits  uint
	laneMask  uint64
	groupMask uint64
	banks     *coded.Banks
	ports     *coded.Ports
	freeRows  [][]byte
}

func newCodedState(cfg Config) *codedState {
	geo := cfg.Coded
	st := &codedState{
		geo:       geo,
		laneBits:  geo.LaneBits(),
		laneMask:  uint64(geo.Group - 1),
		groupMask: uint64(geo.Groups(cfg.Banks) - 1),
		banks:     coded.NewBanks(geo, cfg.WordBytes),
		ports:     coded.NewPorts(geo, cfg.Banks),
	}
	st.freeRows = make([][]byte, geo.ReadPorts()*cfg.Delay)
	for i := range st.freeRows {
		st.freeRows[i] = make([]byte, cfg.WordBytes)
	}
	return st
}

// allocRow takes a decode row from the freelist. The list cannot be
// empty: at most ReadPorts decodes are granted per cycle and each row
// is returned when its playback delivers D cycles later.
func (st *codedState) allocRow() []byte {
	n := len(st.freeRows)
	if n == 0 {
		panic("core: decode row freelist exhausted")
	}
	row := st.freeRows[n-1]
	st.freeRows = st.freeRows[:n-1]
	return row
}

// freeRow returns a delivered decode row to the freelist.
func (st *codedState) freeRow(row []byte) {
	st.freeRows = append(st.freeRows, row)
}

// noteWrite folds an accepted write into the shadow and parity state
// and charges the ports the write-through traffic occupies this cycle:
// the home bank's port (the data write) and the group's parity port
// (the parity read-modify-write). Writes are buffered, so the claims
// are unchecked — they never stall the write itself — but they do deny
// same-cycle reads those ports, which is the modelled cost of parity
// maintenance.
func (st *codedState) noteWrite(bank int, addr uint64, data []byte) {
	st.ports.UseBank(bank)
	st.ports.UseParity(bank)
	st.banks.NoteWrite(addr, data)
}

// readCoded is Read's coded-mode tail: the admission-cap and dual-port
// guards have passed, so grant the read by merge, direct port or parity
// decode — or stall. Call order is the arbitration order, matching the
// one-request-at-a-time hardware interface.
func (c *Controller) readCoded(addr uint64) (tag uint64, err error) {
	st := c.coded
	bank := c.Bank(addr)
	b := c.banks[bank]
	tag = c.nextTag

	// Merge: a CAM hit replays an already-reserved row and needs no
	// port. A hit with a saturated counter may still fall back to a
	// decode — the decode serves the same admission-time value.
	camRow := b.lookup(addr)
	if camRow >= 0 && b.rows[camRow].count < c.maxCount {
		rowID, _, aerr := b.acceptRead(addr, c.maxCount)
		if aerr != nil {
			panic("core: coded merge pre-check disagreed with acceptRead")
		}
		c.grantCoded(bank, grantMerge, nil, playback{rowID: rowID, tag: tag, addr: addr, issuedAt: c.cycle})
		c.stats.MergedReads++
		return tag, nil
	}

	// Direct: the ordinary bank path, if its port is free this cycle.
	// Resource exhaustion (rows, queue, counter) falls through to the
	// decode attempt; only if that also fails is the resource cause
	// reported, so a coded controller stalls strictly less often.
	var directErr error
	if camRow >= 0 {
		directErr = ErrStallCounter
	} else if st.ports.BankFree(bank) {
		rowID, _, aerr := b.acceptRead(addr, c.maxCount)
		if aerr == nil {
			st.ports.UseBank(bank)
			c.grantCoded(bank, grantDirect, nil, playback{rowID: rowID, tag: tag, addr: addr, issuedAt: c.cycle})
			c.notePressure(b)
			return tag, nil
		}
		directErr = aerr
	}

	// Decode: reconstruct from parity + siblings if the cover is free.
	if st.ports.DecodeFree(bank) {
		st.ports.UseDecode(bank)
		row := st.allocRow()
		st.banks.Reconstruct(addr, row)
		c.grantCoded(bank, grantDecode, row, playback{tag: tag, addr: addr, issuedAt: c.cycle})
		return tag, nil
	}

	// Nothing covers the read. Report the direct path's resource cause
	// if it had one (those stalls persist until the resource drains);
	// otherwise it is purely a port-cover miss, which self-clears when
	// the ports reset next cycle.
	if directErr == nil {
		directErr = ErrStallCodedPort
	}
	c.noteStall(directErr)
	if c.cfg.Trace != nil {
		c.cfg.Trace.OnStall(c.cycle, bank, addr, directErr)
	}
	return 0, directErr
}

// grantKind labels how a coded read was covered.
type grantKind int

const (
	grantMerge grantKind = iota
	grantDirect
	grantDecode
)

// grantCoded finishes an accepted coded read: schedules the playback,
// emits the trace event, and updates the shared admission ledger.
// grantDecode selects the parity-reconstruction delivery path with its
// preallocated row; merge/direct playbacks carry a DSB row id instead.
func (c *Controller) grantCoded(bank int, kind grantKind, row []byte, p playback) {
	if c.cfg.Trace != nil {
		c.cfg.Trace.OnRequest(c.cycle, bank, false, kind == grantMerge, p.addr, p.tag)
	}
	c.pushDue(dueEntry{at: c.cycle + uint64(c.cfg.Delay), bank: bank, coded: kind == grantDecode, row: row, p: p})
	c.nextTag++
	c.readsThisCycle++
	c.stats.Reads++
	c.stats.BankRequests[bank]++
}
