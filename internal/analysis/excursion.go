package analysis

import "math"

// ExcursionMTS estimates Mean Time to Stall, in cycles, from an
// observed occupancy-excursion histogram: counts[k] is the number of
// cycles on which the watched backlog (in practice the deepest bank
// access queue) stood at k, with the last index len(counts)-1 being the
// full/stall level Q.
//
// Three regimes, most direct evidence first:
//
//  1. stalls > 0: the stall rate was observed directly, so MTS is just
//     cycles per stall.
//  2. counts[Q] > 0: the queue was seen full (a stall needs only an
//     arrival landing on a full queue), so MTS is cycles per full-queue
//     visit — a slightly optimistic but measured bound.
//  3. Otherwise the tail of the occupancy distribution is extrapolated:
//     in the stable regime the backlog distribution decays geometrically
//     (the Section 5 chain's quasi-stationary behaviour), so a
//     log-linear fit through the populated levels predicts the
//     probability of reaching Q, and MTS ~ 1/P(full) cycles.
//
// A distribution with no populated level above zero carries no signal
// and reports MTSCap, matching the paper's convention of capping
// astronomically large MTS values.
func ExcursionMTS(counts []uint64, stalls uint64) float64 {
	if len(counts) < 2 {
		return MTSCap
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return MTSCap
	}
	if stalls > 0 {
		return capMTS(float64(total) / float64(stalls))
	}
	q := len(counts) - 1
	if counts[q] > 0 {
		return capMTS(float64(total) / float64(counts[q]))
	}
	// Geometric tail fit between the lowest and highest populated
	// nonzero levels. Two distinct populated levels are the minimum for
	// a slope; with fewer the tail carries no signal.
	lo, hi := -1, -1
	for k := 1; k < q; k++ {
		if counts[k] > 0 {
			if lo < 0 {
				lo = k
			}
			hi = k
		}
	}
	if lo < 0 || hi == lo {
		return MTSCap
	}
	ratio := math.Pow(float64(counts[hi])/float64(counts[lo]), 1/float64(hi-lo))
	pHi := float64(counts[hi]) / float64(total)
	if ratio >= 1 {
		// No decay: the system is saturated up to hi; treat reaching hi
		// as reaching full.
		return capMTS(1 / pHi)
	}
	pFull := pHi * math.Pow(ratio, float64(q-hi))
	if pFull <= 0 {
		return MTSCap
	}
	return capMTS(1 / pFull)
}

func capMTS(v float64) float64 {
	if v < 1 {
		return 1
	}
	if v > MTSCap || math.IsInf(v, 1) || math.IsNaN(v) {
		return MTSCap
	}
	return v
}
