package hash

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func families(outBits int, seed uint64) map[string]Func {
	return map[string]Func{
		"h3":             NewH3(outBits, seed),
		"multiply-shift": NewMultiplyShift(outBits, seed),
	}
}

func TestHashDeterministic(t *testing.T) {
	for name, h := range families(8, 1) {
		h2 := families(8, 1)[name]
		for i := uint64(0); i < 1000; i++ {
			if h.Hash(i) != h2.Hash(i) {
				t.Errorf("%s: same seed disagrees at %d", name, i)
				break
			}
		}
	}
}

func TestHashSeedsDiffer(t *testing.T) {
	for name := range families(8, 1) {
		a := families(8, 1)[name]
		b := families(8, 2)[name]
		same := 0
		for i := uint64(0); i < 1000; i++ {
			if a.Hash(i) == b.Hash(i) {
				same++
			}
		}
		// Random agreement is ~1000/256 ≈ 4; flag wholesale collision.
		if same > 100 {
			t.Errorf("%s: different seeds agree on %d/1000 inputs", name, same)
		}
	}
}

func TestHashOutputRange(t *testing.T) {
	f := func(seed, addr uint64, bitsRaw uint8) bool {
		bits := int(bitsRaw%64) + 1
		for _, h := range families(bits, seed) {
			v := h.Hash(addr)
			if bits < 64 && v >= 1<<bits {
				return false
			}
			if h.Bits() != bits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// chiSquare computes the chi-square statistic of observed bucket counts
// against a uniform expectation.
func chiSquare(counts []int, total int) float64 {
	expected := float64(total) / float64(len(counts))
	var x float64
	for _, c := range counts {
		d := float64(c) - expected
		x += d * d / expected
	}
	return x
}

// TestHashUniformitySequential checks that sequential addresses (the
// common pathological pattern for bank interleaving) spread uniformly
// over 32 buckets. With 32 banks and 32768 samples the chi-square
// statistic for a uniform distribution has mean ~31; 100 is far out in
// the tail.
func TestHashUniformitySequential(t *testing.T) {
	const buckets, samples = 32, 32768
	for name, h := range families(5, 7) {
		counts := make([]int, buckets)
		for i := uint64(0); i < samples; i++ {
			counts[h.Hash(i)]++
		}
		if x := chiSquare(counts, samples); x > 100 {
			t.Errorf("%s: sequential addresses chi-square = %.1f (non-uniform)", name, x)
		}
	}
}

// TestHashUniformityStrided checks strided patterns, which defeat naive
// bank-bit mappings (every access lands in one bank) but must remain
// uniform under a universal hash.
func TestHashUniformityStrided(t *testing.T) {
	const buckets, samples = 32, 32768
	for _, stride := range []uint64{32, 64, 4096, 1 << 20} {
		for name, h := range families(5, 11) {
			counts := make([]int, buckets)
			for i := uint64(0); i < samples; i++ {
				counts[h.Hash(i*stride)]++
			}
			if x := chiSquare(counts, samples); x > 120 {
				t.Errorf("%s stride %d: chi-square = %.1f (non-uniform)", name, stride, x)
			}
		}
	}
}

// TestH3PairwiseCollisions estimates the collision probability of
// random pairs under H3; 2-universality promises Pr[h(x)=h(y)] = 2^-bits.
func TestH3PairwiseCollisions(t *testing.T) {
	const bits = 5
	const pairs = 200000
	rng := rand.New(rand.NewPCG(3, 4))
	h := NewH3(bits, 99)
	coll := 0
	for i := 0; i < pairs; i++ {
		x, y := rng.Uint64(), rng.Uint64()
		if x == y {
			continue
		}
		if h.Hash(x) == h.Hash(y) {
			coll++
		}
	}
	got := float64(coll) / float64(pairs)
	want := 1.0 / float64(uint64(1)<<bits)
	if math.Abs(got-want) > want*0.2 {
		t.Errorf("H3 collision rate %.5f, want ~%.5f", got, want)
	}
}

// TestH3Linearity verifies the GF(2) structure H3 is built on:
// h(x) XOR h(y) == h(x XOR y) for parity-based hashing with h(0)=0.
func TestH3Linearity(t *testing.T) {
	h := NewH3(16, 5)
	f := func(x, y uint64) bool {
		return h.Hash(x)^h.Hash(y) == h.Hash(x^y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if h.Hash(0) != 0 {
		t.Fatal("H3(0) must be 0 by GF(2) linearity")
	}
}

func TestIdentity(t *testing.T) {
	id := NewIdentity(4)
	for _, tc := range []struct{ in, want uint64 }{{0, 0}, {15, 15}, {16, 0}, {0xFF, 0xF}} {
		if got := id.Hash(tc.in); got != tc.want {
			t.Errorf("Identity(4).Hash(%d) = %d want %d", tc.in, got, tc.want)
		}
	}
	id64 := NewIdentity(64)
	if got := id64.Hash(^uint64(0)); got != ^uint64(0) {
		t.Errorf("Identity(64) truncated: %x", got)
	}
}

func TestConstructorsPanicOnBadWidth(t *testing.T) {
	cases := []func(){
		func() { NewH3(0, 1) },
		func() { NewH3(65, 1) },
		func() { NewMultiplyShift(0, 1) },
		func() { NewMultiplyShift(65, 1) },
		func() { NewIdentity(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
