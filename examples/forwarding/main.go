// IP forwarding lookups over VPNM — the data-plane algorithm the
// paper's introduction motivates and its conclusion targets as future
// work. The forwarding trie lives entirely in virtually pipelined
// memory; no subtree-to-bank assignment (NP-complete in prior work) is
// needed because the controller guarantees every node read completes in
// exactly D cycles regardless of layout. With many lookups in flight
// the engine sustains nearly one trie-node access per cycle.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/lpm"
)

func main() {
	log.SetFlags(0)

	mem, err := core.New(core.Config{HashSeed: 13})
	if err != nil {
		log.Fatal(err)
	}
	table, err := lpm.NewTable(mem, 1<<24, 1<<18)
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic BGP-ish table: a default route plus random prefixes
	// across the realistic /8../24 range with a tail of host routes.
	rng := rand.New(rand.NewPCG(1, 2))
	if err := table.Insert(0, 0, 0xFFFF); err != nil {
		log.Fatal(err)
	}
	const routes = 5000
	for i := 0; i < routes; i++ {
		length := 8 + rng.IntN(17) // /8../24
		if i%50 == 0 {
			length = 32
		}
		if err := table.Insert(rng.Uint32(), length, lpm.NextHop(1+rng.Uint32N(1<<16))); err != nil {
			log.Fatal(err)
		}
	}
	words, err := table.Sync()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routing table: %d routes, %d trie nodes, %d words written to VPNM memory\n",
		table.Routes(), table.NodeCount(), words)

	// Fire a stream of lookups, keeping the pipeline full, and verify
	// every result against the control-plane shadow.
	engine := lpm.NewEngine(table)
	const lookups = 20_000
	want := make([]lpm.NextHop, lookups)
	launched, finished, mismatches := 0, 0, 0
	cycles := 0
	for finished < lookups {
		if launched < lookups {
			addr := rng.Uint32()
			want[launched] = table.LookupShadow(addr)
			engine.Start(addr, uint64(launched))
			launched++
		}
		for _, res := range engine.Tick() {
			if res.Hop != want[res.ID] {
				mismatches++
			}
			finished++
		}
		cycles++
	}
	_, _, nodeReads, _ := engine.Stats()
	fmt.Printf("%d lookups in %d cycles (%.2f cycles/lookup, %.2f node reads/lookup)\n",
		lookups, cycles, float64(cycles)/lookups, float64(nodeReads)/lookups)
	fmt.Printf("mismatches vs control plane: %d\n", mismatches)
	if mismatches > 0 {
		log.Fatal("forwarding engine diverged from the control plane")
	}

	st := mem.Stats()
	fmt.Printf("memory: %d reads (%d merged), %d stalls, fixed delay D = %d cycles\n",
		st.Reads, st.MergedReads, st.Stalls.Total(), mem.Delay())
	fmt.Printf("\nat 1 GHz this is %.0f M lookups/s — line rate for 40-byte packets at %.0f gbps\n",
		1e3/(float64(cycles)/lookups), 1e9/(float64(cycles)/lookups)*40*8/1e9)
}
