package vpnm

import (
	"repro/internal/classify"
	"repro/internal/lpm"
	"repro/internal/pktbuf"
	"repro/internal/reassembly"
	"repro/internal/sim"
)

// Memory is the cycle-level interface the applications build on; a
// *Controller satisfies it (as do the experimental baselines).
type Memory = sim.Memory

// Packet buffering (paper Section 5.4.1): per-queue FIFOs of fixed
// cells with all payload in VPNM memory.
type (
	// PacketBufferConfig sizes a packet buffer.
	PacketBufferConfig = pktbuf.Config
	// CellBuffer is the cell-granular buffer.
	CellBuffer = pktbuf.Buffer
	// PacketBuffer layers variable-size packets over a CellBuffer.
	PacketBuffer = pktbuf.PacketBuffer
)

// NewCellBuffer builds a cell-granular packet buffer over mem.
func NewCellBuffer(mem Memory, cfg PacketBufferConfig) (*CellBuffer, error) {
	return pktbuf.New(mem, cfg)
}

// NewPacketBuffer layers packet segmentation and reassembly over buf.
func NewPacketBuffer(buf *CellBuffer) *PacketBuffer { return pktbuf.NewPacketBuffer(buf) }

// TCP reassembly (paper Section 5.4.2).
type (
	// Reassembler reorders TCP segments through VPNM memory.
	Reassembler = reassembly.Reassembler
	// ReassemblerConfig sizes the reassembler's address map.
	ReassemblerConfig = reassembly.Config
)

// NewReassembler builds a reassembler over mem.
func NewReassembler(mem Memory, cfg ReassemblerConfig) *Reassembler {
	return reassembly.New(mem, cfg)
}

// IP forwarding (paper Section 6 future work): a multibit LPM trie in
// VPNM memory with a pipelined lookup engine.
type (
	// ForwardingTable is the control-plane trie.
	ForwardingTable = lpm.Table
	// ForwardingEngine is the pipelined lookup engine.
	ForwardingEngine = lpm.Engine
	// NextHop is a forwarding decision.
	NextHop = lpm.NextHop
)

// NewForwardingTable builds a trie whose nodes occupy word addresses
// [base, base+2*maxNodes) of mem.
func NewForwardingTable(mem Memory, base uint64, maxNodes int) (*ForwardingTable, error) {
	return lpm.NewTable(mem, base, maxNodes)
}

// NewForwardingEngine builds a lookup engine over a synced table.
func NewForwardingEngine(t *ForwardingTable) *ForwardingEngine { return lpm.NewEngine(t) }

// Packet classification (paper Section 6 future work): hierarchical
// source/destination tries in VPNM memory.
type (
	// Classifier is the two-dimensional rule matcher.
	Classifier = classify.Classifier
	// ClassifierRule is one (src prefix, dst prefix, priority, action).
	ClassifierRule = classify.Rule
	// ClassifierEngine is the pipelined classification engine.
	ClassifierEngine = classify.Engine
)

// NewClassifier builds a classifier whose nodes occupy word addresses
// [base, base+maxNodes) of mem.
func NewClassifier(mem Memory, base uint64, maxNodes int) (*Classifier, error) {
	return classify.New(mem, base, maxNodes)
}

// NewClassifierEngine builds a classification engine over a synced
// classifier.
func NewClassifierEngine(c *Classifier) *ClassifierEngine { return classify.NewEngine(c) }
