package hash

import (
	"fmt"
	"math/rand/v2"
)

// Feistel is a keyed permutation of a 2^width address space built as a
// balanced Feistel network with multiply-shift round functions. Unlike
// H3 or multiply-shift, Feistel never maps two distinct addresses to the
// same value, so it can relocate an entire address space (bank and row
// together) without introducing aliasing. The paper mentions re-keying
// the universal mapping and reordering data "on the occurrence of
// multiple stalls"; a permutation is what makes that relocation
// well-defined.
type Feistel struct {
	roundKeys []uint64
	width     int
	half      int
	halfMask  uint64
}

// NewFeistel returns a keyed permutation over [0, 1<<width). Width must
// be an even number in [2, 64]; rounds must be at least 3 (4 is the
// customary minimum for pseudorandomness, and the default used by the
// controller).
func NewFeistel(width, rounds int, seed uint64) *Feistel {
	if width < 2 || width > 64 || width%2 != 0 {
		panic(fmt.Sprintf("hash: Feistel width %d must be even and in [2,64]", width))
	}
	if rounds < 3 {
		panic(fmt.Sprintf("hash: Feistel needs at least 3 rounds, got %d", rounds))
	}
	rng := rand.New(rand.NewPCG(seed, 0xc2b2ae3d27d4eb4f))
	keys := make([]uint64, rounds)
	for i := range keys {
		keys[i] = rng.Uint64() | 1 // odd multipliers
	}
	half := width / 2
	return &Feistel{roundKeys: keys, width: width, half: half, halfMask: 1<<half - 1}
}

// round is the per-round mixing function: a multiply-shift hash of the
// half-block under the round key, truncated to the half width.
func (f *Feistel) round(k, x uint64) uint64 {
	x = (x + k) * k
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x & f.halfMask
}

// Permute maps addr through the permutation. addr must be < 1<<width.
func (f *Feistel) Permute(addr uint64) uint64 {
	l := (addr >> f.half) & f.halfMask
	r := addr & f.halfMask
	for _, k := range f.roundKeys {
		l, r = r, l^f.round(k, r)
	}
	return l<<f.half | r
}

// Invert maps a permuted value back to the original address.
func (f *Feistel) Invert(v uint64) uint64 {
	l := (v >> f.half) & f.halfMask
	r := v & f.halfMask
	for i := len(f.roundKeys) - 1; i >= 0; i-- {
		k := f.roundKeys[i]
		l, r = r^f.round(k, l), l
	}
	return l<<f.half | r
}

// Hash implements Func, making a Feistel permutation usable anywhere a
// hash is accepted (its low Bits() output bits select the bank).
func (f *Feistel) Hash(addr uint64) uint64 { return f.Permute(addr & (1<<f.width - 1)) }

// Bits implements Func.
func (f *Feistel) Bits() int { return f.width }
