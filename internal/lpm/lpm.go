// Package lpm implements a longest-prefix-match forwarding engine whose
// trie lives entirely in virtually pipelined memory. It is the data-
// plane algorithm the paper's introduction motivates ("looked up in the
// forwarding table ... large irregular data structures such as trees")
// and its conclusion names as future work ("mapping other data plane
// algorithms into DRAM including packet classification").
//
// Prior art needed bank-aware layouts: Baboescu et al. split the tree
// into subtrees and prove optimal bank assignment NP-complete; Chisel
// resolves conflicts at the algorithmic level. On VPNM the trie is
// simply written to memory — the controller guarantees every node read
// completes in exactly D cycles, so a lookup of depth W is a W-stage
// software pipeline, and with many lookups in flight the engine
// sustains one node access per cycle regardless of how the routing
// table maps to banks.
package lpm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Stride is the multibit-trie stride in bits: each node consumes Stride
// address bits per memory access. 4 bits gives 8 accesses for IPv4,
// matching the multi-level lookup engines the related work studies.
const Stride = 4

// fanout is the per-node child count.
const fanout = 1 << Stride

// MaxDepth is the number of trie levels for a 32-bit IPv4 address.
const MaxDepth = 32 / Stride

// ErrNoMemory reports that the node allocator ran out of the address
// region reserved for the trie.
var ErrNoMemory = errors.New("lpm: trie region exhausted")

// NextHop is a forwarding decision. 0 means "no route".
type NextHop uint32

// node is the in-memory (and in-DRAM) layout of one trie node: for each
// of the 16 children, a next-hop override and a child pointer. The
// encoded form packs into exactly two 64-byte words per node.
type node struct {
	hop   [fanout]NextHop // next hop set at this child edge (0 = none)
	child [fanout]uint32  // node index of the child (0 = none)
	// hopLen is control-plane-only bookkeeping for controlled prefix
	// expansion: the true length of the prefix that set hop[c], so a
	// shorter prefix inserted later never clobbers a longer one's
	// expanded entries. Meaningful only where hop[c] != 0.
	hopLen [fanout]int8
}

// Table is the control-plane view: it owns the trie, keeps a shadow
// copy for verification, and writes every node into VPNM memory.
type Table struct {
	mem    sim.Memory
	base   uint64 // first word address of the trie region
	limit  uint64 // number of node slots available
	nodes  []node // shadow of DRAM contents (control plane state)
	synced []bool // whether nodes[i] matches memory

	routes int
}

// NewTable builds an empty table whose nodes occupy word addresses
// [base, base+2*maxNodes) of mem. The memory's word size must be at
// least 64 bytes (one half-node per word).
func NewTable(mem sim.Memory, base uint64, maxNodes int) (*Table, error) {
	if maxNodes < 1 {
		return nil, fmt.Errorf("lpm: maxNodes must be >= 1, got %d", maxNodes)
	}
	t := &Table{
		mem:    mem,
		base:   base,
		limit:  uint64(maxNodes),
		nodes:  make([]node, 1, maxNodes), // node 0 is the root
		synced: make([]bool, 1, maxNodes),
	}
	return t, nil
}

// Routes reports the number of inserted prefixes.
func (t *Table) Routes() int { return t.routes }

// NodeCount reports the number of allocated trie nodes.
func (t *Table) NodeCount() int { return len(t.nodes) }

// wordAddr returns the address of half w (0 or 1) of node i: each node
// is two consecutive 64-byte words.
func (t *Table) wordAddr(i uint32, w int) uint64 {
	return t.base + 2*uint64(i) + uint64(w)
}

// encodeHalf packs half a node (8 children) into a 64-byte word:
// for each child, 4 bytes of next hop then 4 bytes of child index.
func encodeHalf(n *node, half int) []byte {
	buf := make([]byte, 64)
	for j := 0; j < fanout/2; j++ {
		c := half*fanout/2 + j
		binary.LittleEndian.PutUint32(buf[8*j:], uint32(n.hop[c]))
		binary.LittleEndian.PutUint32(buf[8*j+4:], n.child[c])
	}
	return buf
}

// Insert adds an IPv4 prefix (addr/length) with the given next hop.
// Prefix lengths are rounded up to the stride boundary by expansion,
// the standard controlled-prefix-expansion construction for multibit
// tries. The updated nodes are queued as memory writes; call Sync to
// push them (one write per cycle) before looking up.
func (t *Table) Insert(addr uint32, length int, hop NextHop) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("lpm: prefix length %d out of range", length)
	}
	if hop == 0 {
		return errors.New("lpm: next hop 0 is reserved for 'no route'")
	}
	// Expand to the enclosing stride boundary.
	depth := (length + Stride - 1) / Stride
	expand := depth*Stride - length
	base := addr &^ (1<<(32-uint(length)) - 1)
	if length == 0 {
		base = 0
	}
	if depth == 0 {
		// A length-0 default route expands over every root edge.
		depth = 1
		expand = Stride
	}
	for e := 0; e < 1<<expand; e++ {
		a := base | uint32(e)<<(32-uint(depth*Stride))
		if err := t.insertExact(a, depth, length, hop); err != nil {
			return err
		}
	}
	t.routes++
	return nil
}

// insertExact installs one expanded, stride-aligned entry of the
// original prefix (true length `length`) at trie depth `depth`.
func (t *Table) insertExact(addr uint32, depth, length int, hop NextHop) error {
	cur := uint32(0)
	for level := 0; level < depth-1; level++ {
		c := childIndex(addr, level)
		next := t.nodes[cur].child[c]
		if next == 0 {
			if uint64(len(t.nodes)) >= t.limit {
				return ErrNoMemory
			}
			t.nodes = append(t.nodes, node{})
			t.synced = append(t.synced, false)
			next = uint32(len(t.nodes) - 1)
			t.nodes[cur].child[c] = next
			t.synced[cur] = false
		}
		cur = next
	}
	c := childIndex(addr, depth-1)
	n := &t.nodes[cur]
	// Controlled prefix expansion: an expanded entry belongs to the
	// longest true prefix covering it; equal lengths mean replacement.
	if n.hop[c] == 0 || int(n.hopLen[c]) <= length {
		n.hop[c] = hop
		n.hopLen[c] = int8(length)
		t.synced[cur] = false
	}
	return nil
}

// childIndex extracts the stride bits for the given level (level 0 is
// the most significant).
func childIndex(addr uint32, level int) int {
	shift := 32 - Stride*(level+1)
	return int(addr>>uint(shift)) & (fanout - 1)
}

// Sync writes every dirty node into memory, issuing one write per
// interface cycle (ticking mem as it goes). It returns the number of
// words written.
func (t *Table) Sync() (words int, err error) {
	for i := range t.nodes {
		if t.synced[i] {
			continue
		}
		for w := 0; w < 2; w++ {
			data := encodeHalf(&t.nodes[i], w)
			for {
				err := t.mem.Write(t.wordAddr(uint32(i), w), data)
				if err == nil {
					break
				}
				if !core.IsStall(err) {
					return words, err
				}
				t.mem.Tick()
			}
			words++
			t.mem.Tick()
		}
		t.synced[i] = true
	}
	return words, nil
}

// LookupShadow resolves an address against the control-plane shadow —
// the reference the hardware engine is verified against.
func (t *Table) LookupShadow(addr uint32) NextHop {
	best := NextHop(0)
	cur := uint32(0)
	for level := 0; level < MaxDepth; level++ {
		c := childIndex(addr, level)
		n := &t.nodes[cur]
		if n.hop[c] != 0 {
			best = n.hop[c]
		}
		if n.child[c] == 0 {
			break
		}
		cur = n.child[c]
	}
	return best
}
