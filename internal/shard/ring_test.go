package shard

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"
)

// TestRingOrderIndependence: the same member set in any insertion order
// yields a byte-identical ring — node table, fingerprint and every
// ownership decision agree.
func TestRingOrderIndependence(t *testing.T) {
	members := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"}
	ref, err := NewRing(RingConfig{Seed: 7}, members)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 8; trial++ {
		perm := append([]string(nil), members...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		r, err := NewRing(RingConfig{Seed: 7}, perm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.nodes, ref.nodes) || !reflect.DeepEqual(r.Members(), ref.Members()) {
			t.Fatalf("trial %d: ring built from %v differs from reference", trial, perm)
		}
		if r.Fingerprint() != ref.Fingerprint() {
			t.Fatalf("trial %d: fingerprint mismatch", trial)
		}
	}
	// A different seed or vnode count must not collide.
	other, err := NewRing(RingConfig{Seed: 8}, members)
	if err != nil {
		t.Fatal(err)
	}
	if other.Fingerprint() == ref.Fingerprint() {
		t.Fatal("different seeds produced equal fingerprints")
	}
}

// TestRingBalance: key distribution over 16 shards stays within ±15% of
// uniform, and the arc-width view of the same partition agrees with the
// sampled view.
func TestRingBalance(t *testing.T) {
	const shards = 16
	members := make([]string, shards)
	for i := range members {
		members[i] = fmt.Sprintf("shard-%02d", i)
	}
	r, err := NewRing(RingConfig{Seed: 1}, members)
	if err != nil {
		t.Fatal(err)
	}

	const keys = 1 << 18
	counts := make(map[string]int, shards)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < keys; i++ {
		counts[r.Owner(rng.Uint64())]++
	}
	want := float64(keys) / shards
	for _, m := range members {
		got := float64(counts[m])
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("member %s owns %.0f keys, outside ±15%% of uniform %.0f", m, got, want)
		}
	}

	// Arc widths partition the full 2^64 space exactly (the sum wraps to
	// 0 mod 2^64) and each member's share stays within the same bound.
	var total uint64
	for _, m := range members {
		var width uint64
		for _, a := range r.Ranges(m) {
			width += a.Width()
		}
		total += width
		frac := float64(width) / (1 << 64)
		if frac < 0.85/shards || frac > 1.15/shards {
			t.Errorf("member %s owns %.4f of point space, outside ±15%% of 1/%d", m, frac, shards)
		}
	}
	if total != 0 { // 2^64 ≡ 0
		t.Errorf("arc widths sum to %d mod 2^64, want exact cover (0)", total)
	}
}

// TestRingOwnershipMatchesRanges: Owner and Ranges are two views of one
// partition — every sampled key's owner contains the key's point in one
// of its arcs.
func TestRingOwnershipMatchesRanges(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	r, err := NewRing(RingConfig{VNodes: 32, Seed: 5}, members)
	if err != nil {
		t.Fatal(err)
	}
	ranges := make(map[string][]Range, len(members))
	for _, m := range members {
		ranges[m] = r.Ranges(m)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 4096; i++ {
		addr := rng.Uint64()
		owner := r.Owner(addr)
		p := r.Point(addr)
		found := false
		for _, a := range ranges[owner] {
			if a.Contains(p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("addr %#x: owner %s's ranges do not contain point %#x", addr, owner, p)
		}
		for m, rs := range ranges {
			if m == owner {
				continue
			}
			for _, a := range rs {
				if a.Contains(p) {
					t.Fatalf("addr %#x: point %#x owned by %s but also in %s's arc %+v", addr, p, owner, m, a)
				}
			}
		}
	}
}

// TestMovedAddDrain: moved-range computation on a single-member add or
// drain is minimal and exact — every movement names the changed member,
// the arcs agree with brute-force ownership comparison on sampled keys,
// and the unchanged members trade nothing among themselves.
func TestMovedAddDrain(t *testing.T) {
	base := []string{"s0", "s1", "s2", "s3"}
	cfg := RingConfig{VNodes: 64, Seed: 11}
	cur, err := NewRing(cfg, base)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		next   func() (*Ring, error)
		member string
		adding bool
	}{
		{"add-s4", func() (*Ring, error) { return cur.Add("s4") }, "s4", true},
		{"drain-s2", func() (*Ring, error) { return cur.Remove("s2") }, "s2", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			next, err := tc.next()
			if err != nil {
				t.Fatal(err)
			}
			moved, err := Moved(cur, next)
			if err != nil {
				t.Fatal(err)
			}
			if len(moved) == 0 {
				t.Fatal("no moved ranges for a membership change")
			}
			// Minimality: every movement involves exactly the changed
			// member (as destination on add, source on drain), and no two
			// adjacent movements with equal endpoints were left unmerged.
			for i, m := range moved {
				if tc.adding && m.To != tc.member {
					t.Errorf("movement %d: add moved %+v to %s, want only into %s", i, m.Range, m.To, tc.member)
				}
				if !tc.adding && m.From != tc.member {
					t.Errorf("movement %d: drain moved %+v from %s, want only out of %s", i, m.Range, m.From, tc.member)
				}
				if m.From == m.To {
					t.Errorf("movement %d: degenerate %s -> %s", i, m.From, m.To)
				}
				if i > 0 && moved[i-1].End == m.Start && moved[i-1].From == m.From && moved[i-1].To == m.To {
					t.Errorf("movements %d and %d should have been merged", i-1, i)
				}
			}
			// Exactness: for sampled keys, ownership changed iff the key's
			// point lies in a moved arc, and the arc's From/To match.
			rng := rand.New(rand.NewPCG(21, 22))
			for i := 0; i < 8192; i++ {
				addr := rng.Uint64()
				p := cur.Point(addr)
				was, now := cur.Owner(addr), next.Owner(addr)
				var hit *Movement
				for j := range moved {
					if moved[j].Contains(p) {
						hit = &moved[j]
						break
					}
				}
				if was == now {
					if hit != nil {
						t.Fatalf("addr %#x: unmoved key inside movement %+v", addr, *hit)
					}
					continue
				}
				if hit == nil {
					t.Fatalf("addr %#x: owner changed %s -> %s but no movement covers point %#x", addr, was, now, p)
				}
				if hit.From != was || hit.To != now {
					t.Fatalf("addr %#x: movement says %s -> %s, ownership says %s -> %s", addr, hit.From, hit.To, was, now)
				}
			}
		})
	}
}

// TestMovedIdentity: no membership change, no movements.
func TestMovedIdentity(t *testing.T) {
	r, err := NewRing(RingConfig{Seed: 2}, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(RingConfig{Seed: 2}, []string{"y", "x"})
	if err != nil {
		t.Fatal(err)
	}
	moved, err := Moved(r, r2)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 0 {
		t.Fatalf("identical rings moved %d ranges", len(moved))
	}
}

// TestRingValidation: bad member names and duplicates are rejected.
func TestRingValidation(t *testing.T) {
	for _, bad := range [][]string{
		{""},
		{"a", "a"},
		{"a,b"},
		{"a b"},
	} {
		if _, err := NewRing(RingConfig{}, bad); err == nil {
			t.Errorf("NewRing(%q) accepted invalid members", bad)
		}
	}
	r, err := NewRing(RingConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner(42) != "" || r.OwnerIndex(42) != -1 {
		t.Fatal("empty ring should own nothing")
	}
}
