package multichannel

// Differential exactness tests for the out-of-order issue stage: the
// Stage may reorder issue across channels for throughput, but against a
// strict in-order issuer over an identical Memory it must produce the
// same per-request results — every read returns the value the program
// order dictates (same-address RAW/WAR preserved), every completion
// lands exactly D cycles after its own issue, and the stage ledger
// reconciles to zero. The in-order run doubles as the throughput
// reference: the reordered run must never need more cycles.

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"strconv"
	"testing"

	"repro/internal/coded"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// diffOp is one program-order request of the shared differential
// workload.
type diffOp struct {
	write bool
	addr  uint64
	data  []byte
}

// genDiffOps builds a deterministic read/write mix over a small address
// space — small enough that same-address dependencies (RAW, WAR, and
// redundant-read merges) occur constantly.
func genDiffOps(seed uint64, n int, addrSpace uint64, writeFrac float64) []diffOp {
	rng := rand.New(rand.NewPCG(seed, 0xd1f))
	ops := make([]diffOp, n)
	for i := range ops {
		o := diffOp{addr: rng.Uint64N(addrSpace)}
		if rng.Float64() < writeFrac {
			o.write = true
			o.data = []byte{byte(i), byte(i >> 8), byte(o.addr), byte(seed), 0xA5, byte(i >> 16), 0, 1}
		}
		ops[i] = o
	}
	return ops
}

// expectDiffReads runs the serial oracle: for every read op, the data
// the program order promises (the last preceding write to that address,
// or the zero word).
func expectDiffReads(ops []diffOp, wordBytes int) map[int][]byte {
	model := map[uint64][]byte{}
	want := map[int][]byte{}
	zero := make([]byte, wordBytes)
	for i, o := range ops {
		if o.write {
			model[o.addr] = o.data
			continue
		}
		if w, ok := model[o.addr]; ok {
			want[i] = w
		} else {
			want[i] = zero
		}
	}
	return want
}

// checkDiffComp validates one completion's fixed-D latency and records
// its data under the originating op index.
func checkDiffComp(t *testing.T, c core.Completion, d uint64, idx int, got map[int][]byte) {
	t.Helper()
	if c.DeliveredAt-c.IssuedAt != d {
		t.Fatalf("op %d: latency %d != D=%d", idx, c.DeliveredAt-c.IssuedAt, d)
	}
	if c.Err != nil {
		t.Fatalf("op %d: completion error %v", idx, c.Err)
	}
	if _, dup := got[idx]; dup {
		t.Fatalf("op %d completed twice", idx)
	}
	got[idx] = append([]byte(nil), c.Data...)
}

// runDiffInOrder drives m with ops through a strict in-order issuer:
// one FIFO, the head holds every later request on any refusal — the
// policy the serving engine used before the out-of-order stage. It
// returns each read's delivered data and the cycles to full drain.
func runDiffInOrder(t *testing.T, m *Memory, ops []diffOp) (map[int][]byte, uint64) {
	t.Helper()
	d := uint64(m.Delay())
	tagOp := map[uint64]int{}
	got := map[int][]byte{}
	cycles := uint64(0)
	tick := func() {
		for _, c := range m.Tick() {
			checkDiffComp(t, c, d, tagOp[c.Tag], got)
		}
		cycles++
	}
	head := 0
	for head < len(ops) {
		for head < len(ops) {
			o := ops[head]
			if o.write {
				if err := m.Write(o.addr, o.data); err != nil {
					if err == ErrChannelBusy || core.IsStall(err) {
						break
					}
					t.Fatal(err)
				}
			} else {
				tag, err := m.Read(o.addr)
				if err != nil {
					if err == ErrChannelBusy || core.IsStall(err) {
						break
					}
					t.Fatal(err)
				}
				tagOp[tag] = head
			}
			head++
		}
		tick()
	}
	for m.Outstanding() > 0 {
		tick()
	}
	return got, cycles
}

// runDiffOOO drives m with the same ops through a Stage: single
// admission point in program order (Cookie carries the op index), one
// Sweep per cycle, stalled heads held for retry. It returns each read's
// delivered data, the cycles to full drain, and the stage ledger.
func runDiffOOO(t *testing.T, m *Memory, ops []diffOp, depth int, reg *telemetry.Registry) (map[int][]byte, uint64, StageStats) {
	t.Helper()
	d := uint64(m.Delay())
	tagOp := map[uint64]int{}
	got := map[int][]byte{}
	st := NewStage(m, depth, func(p *Pending, tag uint64, err error) bool {
		if err != nil {
			if core.IsStall(err) {
				return false // hold the head; retry next cycle
			}
			t.Fatalf("op %d: issue error %v", p.Cookie, err)
		}
		if !p.Write {
			tagOp[tag] = int(p.Cookie)
		}
		return true
	}, reg)
	cycles := uint64(0)
	tick := func() {
		for _, c := range m.Tick() {
			checkDiffComp(t, c, d, tagOp[c.Tag], got)
		}
		cycles++
	}
	next := 0
	for next < len(ops) || st.Len() > 0 {
		for next < len(ops) {
			o := ops[next]
			if !st.Admit(Pending{Addr: o.addr, Data: o.data, Cookie: uint64(next), Write: o.write}) {
				break
			}
			next++
		}
		st.Sweep()
		tick()
	}
	for m.Outstanding() > 0 {
		tick()
	}
	return got, cycles, st.Stats()
}

// diffCfg is a geometry generous enough that stalls never decide the
// comparison: the differential is about ordering, not capacity.
func diffCfg() core.Config {
	return core.Config{Banks: 16, QueueDepth: 64, DelayRows: 256, WordBytes: 8}
}

// verifyDiffRun checks one runner's results against the serial oracle:
// every read answered exactly once, with the program-order value.
func verifyDiffRun(t *testing.T, name string, got, want map[int][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s answered %d reads, want %d", name, len(got), len(want))
	}
	for i, w := range want {
		if !bytes.Equal(got[i], w) {
			t.Fatalf("%s op %d: data %x, want %x", name, i, got[i], w)
		}
	}
}

// TestStageDifferentialVsInOrder is the exactness contract, over ten
// seeds: reordered issue must be observationally identical to in-order
// issue — identical per-request read results (the serial oracle checks
// same-address RAW/WAR order for both), every completion at exactly
// issue+D, the stage ledger balanced — while never spending more
// cycles than the in-order reference.
func TestStageDifferentialVsInOrder(t *testing.T) {
	const (
		nOps      = 4000
		addrSpace = 1024
		channels  = 4
	)
	for seed := uint64(0); seed < 10; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ops := genDiffOps(seed, nOps, addrSpace, 0.3)
			want := expectDiffReads(ops, 8)

			mIn, err := New(diffCfg(), channels, seed+1)
			if err != nil {
				t.Fatal(err)
			}
			mOOO, err := New(diffCfg(), channels, seed+1)
			if err != nil {
				t.Fatal(err)
			}

			gotIn, cyclesIn := runDiffInOrder(t, mIn, ops)
			gotOOO, cyclesOOO, stats := runDiffOOO(t, mOOO, ops, 0, nil)

			verifyDiffRun(t, "in-order", gotIn, want)
			verifyDiffRun(t, "out-of-order", gotOOO, want)
			if cyclesOOO > cyclesIn {
				t.Errorf("reordering cost cycles: %d out-of-order vs %d in-order", cyclesOOO, cyclesIn)
			}
			if stats.Admitted != nOps || stats.Issued != nOps || stats.Pending != 0 {
				t.Errorf("stage ledger does not reconcile: %+v over %d ops", stats, nOps)
			}

			// The two memories saw the same requests, so their own ledgers
			// must agree too (busy counts differ by construction: only the
			// in-order path goes through the Read/Write remap).
			rIn, wIn, _, _ := mIn.Stats()
			rOOO, wOOO, _, _ := mOOO.Stats()
			if rIn != rOOO || wIn != wOOO {
				t.Errorf("memory ledgers diverge: in-order %d/%d vs out-of-order %d/%d", rIn, wIn, rOOO, wOOO)
			}
		})
	}
}

// TestStageDifferentialCoded repeats the exactness contract with
// XOR-parity coded banks: up to ReadPorts()=2 reads per channel per
// cycle, held third requests, and parity-decode data paths must not
// open an ordering hole.
func TestStageDifferentialCoded(t *testing.T) {
	const channels = 4
	for seed := uint64(0); seed < 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := diffCfg()
			cfg.Coded = coded.Geometry{Group: 4, K: 2}
			ops := genDiffOps(seed^0xC0DE, 3000, 512, 0.25)
			want := expectDiffReads(ops, 8)

			mIn, err := New(cfg, channels, seed+21)
			if err != nil {
				t.Fatal(err)
			}
			mOOO, err := New(cfg, channels, seed+21)
			if err != nil {
				t.Fatal(err)
			}
			gotIn, cyclesIn := runDiffInOrder(t, mIn, ops)
			gotOOO, cyclesOOO, stats := runDiffOOO(t, mOOO, ops, 0, nil)
			verifyDiffRun(t, "in-order", gotIn, want)
			verifyDiffRun(t, "out-of-order", gotOOO, want)
			if cyclesOOO > cyclesIn {
				t.Errorf("coded reordering cost cycles: %d vs %d", cyclesOOO, cyclesIn)
			}
			if stats.Issued != uint64(len(ops)) || stats.Pending != 0 {
				t.Errorf("stage ledger does not reconcile: %+v", stats)
			}
		})
	}
}

// TestStageFixedDAcrossRekey: a mid-run hash rekey drains the memory
// under the stage's feet. Requests still parked in the stage must stay
// correctly routed (the channel selector is deliberately not rekeyed)
// and every read — drained in flight or issued after — still completes
// exactly D cycles after its own issue with the program-order value.
func TestStageFixedDAcrossRekey(t *testing.T) {
	const channels = 4
	m, err := New(diffCfg(), channels, 77)
	if err != nil {
		t.Fatal(err)
	}
	d := uint64(m.Delay())
	ops := genDiffOps(99, 3000, 512, 0.3)
	want := expectDiffReads(ops, 8)

	tagOp := map[uint64]int{}
	got := map[int][]byte{}
	st := NewStage(m, 0, func(p *Pending, tag uint64, err error) bool {
		if err != nil {
			if core.IsStall(err) {
				return false
			}
			t.Fatalf("op %d: issue error %v", p.Cookie, err)
		}
		if !p.Write {
			tagOp[tag] = int(p.Cookie)
		}
		return true
	}, nil)

	next := 0
	cycle := 0
	tick := func() {
		for _, c := range m.Tick() {
			checkDiffComp(t, c, d, tagOp[c.Tag], got)
		}
		cycle++
	}
	rekeyed := false
	for next < len(ops) || st.Len() > 0 {
		if !rekeyed && next > len(ops)/2 && m.Outstanding() > 0 {
			// Rekey with reads in flight AND requests parked in the stage:
			// the drained completions come back re-tagged, each still
			// exactly D after its issue.
			drained, err := m.Rekey(4242)
			if err != nil {
				t.Fatal(err)
			}
			if len(drained) == 0 {
				t.Fatal("rekey drained nothing despite in-flight reads")
			}
			for _, c := range drained {
				checkDiffComp(t, c, d, tagOp[c.Tag], got)
			}
			rekeyed = true
		}
		for next < len(ops) {
			o := ops[next]
			if !st.Admit(Pending{Addr: o.addr, Data: o.data, Cookie: uint64(next), Write: o.write}) {
				break
			}
			next++
		}
		st.Sweep()
		tick()
	}
	for m.Outstanding() > 0 {
		tick()
	}
	if !rekeyed {
		t.Fatal("rekey point never reached")
	}
	verifyDiffRun(t, "rekeyed", got, want)
	if st.Len() != 0 {
		t.Fatalf("%d requests still parked after drain", st.Len())
	}
}

// TestStageFaultInjection runs the stage over a faulty DRAM: corrected
// single-bit flips must stay invisible, uncorrectable double-bit flips
// must arrive flagged — and still exactly at issue+D; reordering must
// not reorder a fault onto the wrong request.
func TestStageFaultInjection(t *testing.T) {
	inj, err := fault.New(fault.Config{Seed: 5, SingleBitRate: 0.02, DoubleBitRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cfg := diffCfg()
	cfg.Fault = inj
	m, err := New(cfg, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	d := uint64(m.Delay())
	ops := genDiffOps(7, 4000, 256, 0.2)
	want := expectDiffReads(ops, 8)

	tagOp := map[uint64]int{}
	got := map[int][]byte{}
	flagged := map[int]bool{}
	st := NewStage(m, 0, func(p *Pending, tag uint64, err error) bool {
		if err != nil {
			if core.IsStall(err) {
				return false
			}
			t.Fatalf("op %d: issue error %v", p.Cookie, err)
		}
		if !p.Write {
			tagOp[tag] = int(p.Cookie)
		}
		return true
	}, nil)
	cycles := 0
	tick := func() {
		for _, c := range m.Tick() {
			idx := tagOp[c.Tag]
			if c.DeliveredAt-c.IssuedAt != d {
				t.Fatalf("op %d: latency %d != D=%d under faults", idx, c.DeliveredAt-c.IssuedAt, d)
			}
			if _, dup := got[idx]; dup {
				t.Fatalf("op %d completed twice", idx)
			}
			got[idx] = append([]byte(nil), c.Data...)
			if c.Err != nil {
				flagged[idx] = true
			}
		}
		cycles++
	}
	next := 0
	for next < len(ops) || st.Len() > 0 {
		for next < len(ops) {
			o := ops[next]
			if !st.Admit(Pending{Addr: o.addr, Data: o.data, Cookie: uint64(next), Write: o.write}) {
				break
			}
			next++
		}
		st.Sweep()
		tick()
	}
	for m.Outstanding() > 0 {
		tick()
	}
	if len(got) != len(want) {
		t.Fatalf("answered %d reads, want %d", len(got), len(want))
	}
	if len(flagged) == 0 {
		t.Fatal("a 1% double-bit rate injected nothing — injector not wired under the stage")
	}
	for i, w := range want {
		if flagged[i] {
			continue // on time but untrusted; data deliberately unchecked
		}
		if !bytes.Equal(got[i], w) {
			t.Fatalf("op %d: unflagged data %x, want %x", i, got[i], w)
		}
	}
}

// TestStageTelemetryRoundTrip saturates an armed stage and verifies the
// vpnm_ooo_* series through a strict text-exposition round trip: the
// reorder-depth histogram's count matches the issue ledger, the
// head-of-line-bypass counter matches (and is non-zero — a saturated
// stage must bypass), and the per-channel pending gauges match the live
// ring occupancies at scrape time.
func TestStageTelemetryRoundTrip(t *testing.T) {
	const channels = 4
	reg := telemetry.NewRegistry()
	// Tight geometry so channels hold often and bypasses happen.
	m, err := New(core.Config{Banks: 4, QueueDepth: 4, DelayRows: 32, WordBytes: 8}, channels, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStage(m, 16, func(p *Pending, tag uint64, err error) bool {
		return !core.IsStall(err) // hold stalled heads
	}, reg)
	rng := rand.New(rand.NewPCG(6, 28))
	for i := 0; i < 4000; i++ {
		for st.Admit(Pending{Addr: rng.Uint64N(1 << 20), Cookie: uint64(i)}) {
			// fill to the brim: saturation is what makes reordering visible
		}
		st.Sweep()
		m.Tick()
	}
	stats := st.Stats()
	if stats.Issued == 0 || stats.Bypasses == 0 {
		t.Fatalf("saturated stage issued %d with %d bypasses; nothing to verify", stats.Issued, stats.Bypasses)
	}
	if stats.Admitted != stats.Issued+uint64(stats.Pending) {
		t.Fatalf("stage ledger leaks: %+v", stats)
	}

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := telemetry.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]uint64{
		"vpnm_ooo_reorder_depth_count":             stats.Issued,
		`vpnm_ooo_reorder_depth_bucket{le="+Inf"}`: stats.Issued,
		"vpnm_ooo_hol_bypass_total":                stats.Bypasses,
	} {
		got, ok := parsed[key]
		if !ok {
			t.Fatalf("exposition missing %s", key)
		}
		if uint64(got) != want {
			t.Errorf("%s = %g, want %d", key, got, want)
		}
	}
	for ch := 0; ch < channels; ch++ {
		key := `vpnm_ooo_pending{channel="` + strconv.Itoa(ch) + `"}`
		got, ok := parsed[key]
		if !ok {
			t.Fatalf("exposition missing %s", key)
		}
		if int(got) != st.ChannelLen(ch) {
			t.Errorf("%s = %g, want %d", key, got, st.ChannelLen(ch))
		}
	}
}

// TestStageAdmitRefusesWhenFull pins the backpressure contract: a full
// channel ring refuses (the caller holds the request), Room agrees, and
// a sweep that frees a slot makes the next Admit succeed.
func TestStageAdmitRefusesWhenFull(t *testing.T) {
	m, err := New(diffCfg(), 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStage(m, 2, func(p *Pending, tag uint64, err error) bool {
		return !core.IsStall(err)
	}, nil)
	if st.Depth() != 2 || st.Cap() != 2 {
		t.Fatalf("depth/cap = %d/%d, want 2/2", st.Depth(), st.Cap())
	}
	for i := 0; i < 2; i++ {
		if !st.Admit(Pending{Addr: uint64(i)}) {
			t.Fatalf("admit %d refused below capacity", i)
		}
	}
	if st.Room(0) || st.Admit(Pending{Addr: 3}) {
		t.Fatal("full ring admitted a third request")
	}
	st.Sweep() // one read issues (single channel, one port)
	if st.Len() != 1 || !st.Room(0) {
		t.Fatalf("after sweep: len=%d room=%v", st.Len(), st.Room(0))
	}
	if !st.Admit(Pending{Addr: 5}) {
		t.Fatal("admit refused with room available")
	}
}
