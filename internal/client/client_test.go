package client_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/multichannel"
	"repro/internal/recovery"
	"repro/internal/server"
)

func ctx(t *testing.T) context.Context {
	t.Helper()
	c, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return c
}

// pipeClient wires a fresh client to a fresh engine over net.Pipe.
func pipeClient(t *testing.T, scfg server.Config, mcfg core.Config, channels int, ccfg client.Config) (*client.Client, *server.Engine, *multichannel.Memory) {
	t.Helper()
	mem, err := multichannel.New(mcfg, channels, 1)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Mem = mem
	eng, err := server.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	cn, sn := net.Pipe()
	if err := eng.ServeConn(sn); err != nil {
		t.Fatal(err)
	}
	c := client.New(cn, ccfg)
	t.Cleanup(func() { c.Close() })
	return c, eng, mem
}

func smallCfg() core.Config {
	return core.Config{Banks: 8, QueueDepth: 16, DelayRows: 64, WordBytes: 8}
}

func TestReadWriteFlushStats(t *testing.T) {
	c, _, mem := pipeClient(t, server.Config{}, smallCfg(), 2, client.Config{})
	tctx := ctx(t)

	s, err := c.Stats(tctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Delay != uint64(mem.Delay()) || c.Delay() != s.Delay {
		t.Fatalf("Stats taught D=%d (client %d), want %d", s.Delay, c.Delay(), mem.Delay())
	}

	word := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	if err := c.Write(tctx, 0xbeef, word); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(tctx); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var got []byte
	var comp client.Completion
	calls := 0
	err = c.Read(tctx, 0xbeef, func(cm client.Completion) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		comp = cm
		got = append([]byte(nil), cm.Data...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(tctx); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("callback fired %d times, want exactly once", calls)
	}
	if comp.Err != nil || !bytes.Equal(got, word) {
		t.Fatalf("completion = %+v data %x, want %x with nil Err", comp, got, word)
	}
	if d := comp.DeliveredAt - comp.IssuedAt; d != uint64(mem.Delay()) {
		t.Fatalf("delta = %d cycles, want D = %d", d, mem.Delay())
	}

	ctr := c.Counters()
	if ctr.Issued != 2 || ctr.Reads != 1 || ctr.Writes != 1 ||
		ctr.AcceptedWrites != 1 || ctr.Completions != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
	if ctr.LatencyViolations != 0 {
		t.Fatalf("%d fixed-D violations", ctr.LatencyViolations)
	}
}

// TestStallRetry drives a one-bank queue-depth-one memory through a
// stall-surfacing server; the client's RetryNextCycle policy must
// re-issue every stalled read until all of them complete at exactly D.
func TestStallRetry(t *testing.T) {
	c, _, _ := pipeClient(t,
		server.Config{Policy: recovery.DropWithAccounting},
		core.Config{Banks: 1, QueueDepth: 1, WordBytes: 8}, 1,
		client.Config{Policy: recovery.RetryNextCycle})
	tctx := ctx(t)
	if _, err := c.Stats(tctx); err != nil { // arm the fixed-D check
		t.Fatal(err)
	}

	const n = 32
	var mu sync.Mutex
	errs := 0
	for i := uint64(0); i < n; i++ {
		err := c.Read(tctx, i, func(cm client.Completion) {
			if cm.Err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	ctr := c.Counters()
	mu.Lock()
	defer mu.Unlock()
	if errs != 0 || ctr.Completions != n || ctr.Drops != 0 {
		t.Fatalf("errs=%d counters=%+v, want all %d reads completed", errs, ctr, n)
	}
	if ctr.Stalls.Total() == 0 || ctr.Retries == 0 {
		t.Fatalf("counters=%+v, want stalls surfaced and retried on this geometry", ctr)
	}
	if ctr.LatencyViolations != 0 {
		t.Fatalf("%d fixed-D violations across retries", ctr.LatencyViolations)
	}
}

// TestDropPolicy: with DropWithAccounting on the client too, stalled
// reads resolve their callback with an error wrapping both
// recovery.ErrDropped and the stall cause.
func TestDropPolicy(t *testing.T) {
	c, _, _ := pipeClient(t,
		server.Config{Policy: recovery.DropWithAccounting},
		core.Config{Banks: 1, QueueDepth: 1, WordBytes: 8}, 1,
		client.Config{Policy: recovery.DropWithAccounting})
	tctx := ctx(t)

	const n = 32
	var mu sync.Mutex
	dropped, completed, badErr := 0, 0, 0
	for i := uint64(0); i < n; i++ {
		err := c.Read(tctx, i, func(cm client.Completion) {
			mu.Lock()
			defer mu.Unlock()
			if cm.Err == nil {
				completed++
				return
			}
			dropped++
			if !errors.Is(cm.Err, recovery.ErrDropped) || !errors.Is(cm.Err, core.ErrStall) {
				badErr++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(tctx); err != nil {
		t.Fatal(err)
	}
	ctr := c.Counters()
	mu.Lock()
	defer mu.Unlock()
	if dropped+completed != n || badErr != 0 {
		t.Fatalf("dropped=%d completed=%d badErr=%d, want %d resolutions", dropped, completed, badErr, n)
	}
	if dropped == 0 {
		t.Fatal("no drops on a geometry that must stall")
	}
	if ctr.Drops != uint64(dropped) || ctr.Retries != 0 {
		t.Fatalf("counters=%+v, want %d drops and no retries", ctr, dropped)
	}
}

// TestWindowBackpressure: with nobody draining the pipe, the second
// request must block on the window until its context expires.
func TestWindowBackpressure(t *testing.T) {
	cn, sn := net.Pipe()
	defer sn.Close()
	c := client.New(cn, client.Config{Window: 1, ManualBatch: true})
	defer c.Close()

	if err := c.Read(context.Background(), 1, func(client.Completion) {}); err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.Read(short, 2, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Read returned %v, want DeadlineExceeded", err)
	}
}

// TestConnFailure: a dying connection resolves pending reads with the
// terminal error and fails subsequent calls.
func TestConnFailure(t *testing.T) {
	cn, sn := net.Pipe()
	c := client.New(cn, client.Config{ManualBatch: true})
	defer c.Close()

	got := make(chan error, 1)
	if err := c.Read(context.Background(), 1, func(cm client.Completion) { got <- cm.Err }); err != nil {
		t.Fatal(err)
	}
	sn.Close()
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("pending read resolved with nil error on a dead connection")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pending read never resolved")
	}
	if err := c.Read(context.Background(), 2, nil); err == nil {
		t.Fatal("Read succeeded on a failed client")
	}
	if err := c.Flush(context.Background()); err == nil {
		t.Fatal("Flush succeeded on a failed client")
	}
}

// TestConcurrentClients runs several clients against one engine at once
// — the race-detector workout for the engine's conn multiplexing.
func TestConcurrentClients(t *testing.T) {
	mem, err := multichannel.New(smallCfg(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := server.New(server.Config{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const clients, perClient = 4, 200
	var wg sync.WaitGroup
	fail := make(chan error, clients)
	for k := 0; k < clients; k++ {
		cn, sn := net.Pipe()
		if err := eng.ServeConn(sn); err != nil {
			t.Fatal(err)
		}
		c := client.New(cn, client.Config{Window: 64})
		defer c.Close()
		wg.Add(1)
		go func(k int, c *client.Client) {
			defer wg.Done()
			tctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			base := uint64(k) << 32 // disjoint address spaces per client
			word := []byte{byte(k), 0, 0, 0, 0, 0, 0, 1}
			for i := uint64(0); i < perClient; i++ {
				if err := c.Write(tctx, base+i, word); err != nil {
					fail <- err
					return
				}
			}
			if err := c.Flush(tctx); err != nil {
				fail <- err
				return
			}
			bad := make(chan struct{}, perClient)
			for i := uint64(0); i < perClient; i++ {
				err := c.Read(tctx, base+i, func(cm client.Completion) {
					if cm.Err != nil || len(cm.Data) == 0 || cm.Data[0] != byte(k) {
						bad <- struct{}{}
					}
				})
				if err != nil {
					fail <- err
					return
				}
			}
			if err := c.Flush(tctx); err != nil {
				fail <- err
				return
			}
			if len(bad) > 0 {
				fail <- errors.New("cross-connection data corruption")
				return
			}
			if ctr := c.Counters(); ctr.Completions != perClient || ctr.LatencyViolations != 0 {
				fail <- errors.New("ledger mismatch")
			}
		}(k, c)
	}
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	if s := eng.Snapshot(); s.Completions != clients*perClient || s.Outstanding != 0 {
		t.Fatalf("engine snapshot = %+v", s)
	}
}
