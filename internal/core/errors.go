package core

import (
	"errors"
	"fmt"
)

// ErrStall is the sentinel wrapped by every stall condition. A stall
// means the controller could not accept the request this cycle; the
// paper's two recovery options are to retry next cycle (stall the
// device, slowing it by a negligible fraction) or to drop the packet.
var ErrStall = errors.New("vpnm: stall")

// The three stall conditions of Section 4.3, plus counter saturation.
// Each wraps ErrStall, so errors.Is(err, ErrStall) identifies any stall.
var (
	// ErrStallDelayBuffer: a non-redundant read found no free row in the
	// delay storage buffer (all K rows are reserved for in-flight data).
	ErrStallDelayBuffer = fmt.Errorf("%w: delay storage buffer full", ErrStall)
	// ErrStallBankQueue: a new read or write found the bank access queue
	// already holding Q requests.
	ErrStallBankQueue = fmt.Errorf("%w: bank access queue full", ErrStall)
	// ErrStallWriteBuffer: a write found the write buffer FIFO full.
	ErrStallWriteBuffer = fmt.Errorf("%w: write buffer full", ErrStall)
	// ErrStallCounter: a redundant read found its row's playback counter
	// saturated at 2^C - 1.
	ErrStallCounter = fmt.Errorf("%w: redundant-request counter saturated", ErrStall)
	// ErrStallCodedPort: in coded mode, the candidate read could be
	// covered by neither a direct bank port nor a parity-decode
	// combination this cycle — every port it needs is already granted.
	// Unlike the resource stalls above it clears by itself: ports are
	// per-cycle, so a retry next cycle sees a fresh cover.
	ErrStallCodedPort = fmt.Errorf("%w: coded bank ports exhausted", ErrStall)
)

// ErrSecondRequest reports a protocol violation: the interface accepts
// at most one request per interface cycle.
var ErrSecondRequest = errors.New("vpnm: more than one request in a single interface cycle")

// ErrUncorrectable flags a completion whose data failed the ECC layer
// with a multi-bit error: the word still arrives exactly D cycles after
// issue — the pipeline never skips a beat — but its payload must not be
// trusted (see Completion.Err). It is not a stall: the request was
// accepted and completed, so IsStall reports false and the recovery
// policies do not retry it.
var ErrUncorrectable = errors.New("vpnm: uncorrectable memory error")

// IsStall reports whether err is one of the stall conditions. The
// identity switch covers every value this package returns — it keeps
// the per-cycle retry path off errors.Is, whose unwrap walk is
// measurable when stalls are a steady fraction of issue attempts — and
// the errors.Is fallback still recognizes externally wrapped stalls.
func IsStall(err error) bool {
	switch err {
	case ErrStall, ErrStallDelayBuffer, ErrStallBankQueue, ErrStallWriteBuffer, ErrStallCounter, ErrStallCodedPort:
		return true
	case nil, ErrSecondRequest, ErrUncorrectable:
		return false
	}
	return errors.Is(err, ErrStall)
}

// errDataTooLong reports a write wider than the configured word.
func errDataTooLong(got, word int) error {
	return fmt.Errorf("vpnm: write of %d bytes exceeds word size %d", got, word)
}
