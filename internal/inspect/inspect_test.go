package inspect

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/reassembly"
)

func TestSinglepatternWholeChunk(t *testing.T) {
	s, err := NewScanner([]byte("virus"))
	if err != nil {
		t.Fatal(err)
	}
	m := s.NewStream().Feed([]byte("xx virus yy virus"))
	if len(m) != 2 {
		t.Fatalf("matches = %d want 2", len(m))
	}
	if m[0].End != 8 || m[1].End != 17 {
		t.Fatalf("ends = %d,%d", m[0].End, m[1].End)
	}
}

func TestOverlappingPatterns(t *testing.T) {
	s, _ := NewScanner([]byte("he"), []byte("she"), []byte("his"), []byte("hers"))
	m := s.NewStream().Feed([]byte("ushers"))
	// Classic Aho-Corasick example: she@4, he@4, hers@6.
	got := map[[2]int]bool{}
	for _, x := range m {
		got[[2]int{x.Pattern, x.End}] = true
	}
	want := [][2]int{{1, 4}, {0, 4}, {3, 6}}
	if len(m) != 3 {
		t.Fatalf("matches = %v", m)
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("missing match pattern=%d end=%d in %v", w[0], w[1], m)
		}
	}
}

func TestStreamingAcrossChunks(t *testing.T) {
	s, _ := NewScanner([]byte("signature"))
	st := s.NewStream()
	var all []Match
	for _, c := range [][]byte{[]byte("xxsig"), []byte("nat"), []byte("ureyy")} {
		all = append(all, st.Feed(c)...)
	}
	if len(all) != 1 || all[0].End != 11 {
		t.Fatalf("split match: %v", all)
	}
}

func TestPacketwiseScanMissesSplit(t *testing.T) {
	// The attack: the signature straddles a packet boundary.
	s, _ := NewScanner([]byte("worm"))
	chunks := [][]byte{[]byte("xxxwo"), []byte("rmyyy")}
	if m := s.ScanPacketwise(chunks); len(m) != 0 {
		t.Fatalf("per-packet scan should miss the split signature, got %v", m)
	}
	st := s.NewStream()
	n := 0
	for _, c := range chunks {
		n += len(st.Feed(c))
	}
	if n != 1 {
		t.Fatalf("streaming scan found %d matches want 1", n)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewScanner(); err != ErrNoPatterns {
		t.Fatal("empty set accepted")
	}
	if _, err := NewScanner([]byte("a"), nil); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestRandomizedAgainstBytesContains(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		pat := make([]byte, 2+rng.IntN(4))
		for i := range pat {
			pat[i] = 'a' + byte(rng.IntN(3))
		}
		text := make([]byte, 200)
		for i := range text {
			text[i] = 'a' + byte(rng.IntN(3))
		}
		s, _ := NewScanner(pat)
		got := len(s.NewStream().Feed(text))
		want := 0
		for i := 0; i+len(pat) <= len(text); i++ {
			if bytes.Equal(text[i:i+len(pat)], pat) {
				want++
			}
		}
		if got != want {
			t.Fatalf("trial %d: %d matches want %d (pat %q)", trial, got, want, pat)
		}
	}
}

// TestEvasionDefeatedEndToEnd is Section 5.4.2's whole story in one
// test: an attacker splits a worm signature across two deliberately
// reordered TCP segments. Per-packet inspection misses it; inspection
// of the VPNM-reassembled stream finds it.
func TestEvasionDefeatedEndToEnd(t *testing.T) {
	mem, err := core.New(core.Config{Banks: 8, QueueDepth: 8, DelayRows: 32, WordBytes: 64, HashSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := reassembly.New(mem, reassembly.Config{})
	scanner, _ := NewScanner([]byte("EVIL_WORM_SIGNATURE"))

	// Two 64-byte chunks; the signature straddles their boundary.
	stream := make([]byte, 2*reassembly.ChunkBytes)
	for i := range stream {
		stream[i] = 'x'
	}
	copy(stream[reassembly.ChunkBytes-10:], []byte("EVIL_WORM_SIGNATURE"))
	segA := stream[:reassembly.ChunkBytes]
	segB := stream[reassembly.ChunkBytes:]

	// The attacker sends the second segment first.
	if m := scanner.ScanPacketwise([][]byte{segB, segA}); len(m) != 0 {
		t.Fatalf("per-packet scan found %v; the evasion should work against it", m)
	}

	if err := r.Submit(1, reassembly.ChunkBytes, segB); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(1, 0, segA); err != nil {
		t.Fatal(err)
	}
	if !r.Drain(1_000_000) {
		t.Fatal("reassembly did not drain")
	}
	st := scanner.NewStream()
	matches := st.Feed(r.InOrder(1))
	if len(matches) != 1 {
		t.Fatalf("reassembled scan found %d matches want 1", len(matches))
	}
	if !bytes.Equal(r.InOrder(1), stream) {
		t.Fatal("stream corrupted")
	}
}
