// Package hash implements the cryptographically strong randomization that
// VPNM uses to spread memory addresses across DRAM banks (Section 3.2 of
// the paper). The controller relies on a universal hash family in the
// sense of Carter and Wegman: an adversary who cannot observe bank
// conflicts directly (the virtual pipeline hides them) cannot construct a
// set of addresses that collides in one bank with probability better than
// random chance.
//
// Three families are provided:
//
//   - H3: the classic GF(2) matrix family. Each output bit is the parity
//     of the input ANDed with an independent random key word. H3 is
//     pairwise independent and trivially pipelinable in hardware, which
//     is why the paper's hash unit HU adds only a constant latency.
//   - Multiply-shift: a cheaper 2-universal family, useful as a software
//     fallback and in tests.
//   - Feistel: a keyed *permutation* of the address space, used when the
//     full address (not just the bank index) must be randomized without
//     collisions.
package hash

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
)

// Func is a keyed hash from 64-bit addresses to values with Bits()
// significant low-order bits. Implementations are deterministic for a
// given key so simulations are reproducible.
type Func interface {
	// Hash maps an address to a value in [0, 1<<Bits()).
	Hash(addr uint64) uint64
	// Bits reports the output width in bits.
	Bits() int
}

// H3 is a member of the H3 universal family: output bit i is
// parity(key[i] & addr). With independently random key words the family
// is 2-universal over any set of addresses, which is the property the
// MTS analysis in Section 5 depends on.
type H3 struct {
	key  []uint64
	bits int
}

// NewH3 draws an H3 member with the given output width from the keyed
// generator. Width must be in [1, 64].
func NewH3(outBits int, seed uint64) *H3 {
	if outBits < 1 || outBits > 64 {
		panic(fmt.Sprintf("hash: H3 output width %d out of range [1,64]", outBits))
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	key := make([]uint64, outBits)
	for i := range key {
		// Reject zero key words: a zero row would fix that output bit to
		// 0 for all inputs, halving the effective bank count.
		for key[i] == 0 {
			key[i] = rng.Uint64()
		}
	}
	return &H3{key: key, bits: outBits}
}

// Hash implements Func.
func (h *H3) Hash(addr uint64) uint64 {
	var out uint64
	for i, k := range h.key {
		out |= uint64(bits.OnesCount64(k&addr)&1) << i
	}
	return out
}

// Bits implements Func.
func (h *H3) Bits() int { return h.bits }

// MultiplyShift is the 2-universal multiply-shift family
// h(x) = (a*x + b) >> (64 - outBits) with odd a.
type MultiplyShift struct {
	a, b uint64
	bits int
}

// NewMultiplyShift draws a multiply-shift member with the given output
// width. Width must be in [1, 64].
func NewMultiplyShift(outBits int, seed uint64) *MultiplyShift {
	if outBits < 1 || outBits > 64 {
		panic(fmt.Sprintf("hash: multiply-shift output width %d out of range [1,64]", outBits))
	}
	rng := rand.New(rand.NewPCG(seed, 0x7f4a7c159e3779b9))
	return &MultiplyShift{a: rng.Uint64() | 1, b: rng.Uint64(), bits: outBits}
}

// Hash implements Func.
func (m *MultiplyShift) Hash(addr uint64) uint64 {
	return (m.a*addr + m.b) >> (64 - m.bits)
}

// Bits implements Func.
func (m *MultiplyShift) Bits() int { return m.bits }

// Identity maps an address to its low-order bits unchanged. It models a
// conventional controller's bank-interleaving (no randomization) and is
// what the FCFS baseline and the adversarial experiments use.
type Identity struct{ bits int }

// NewIdentity returns the identity mapping with the given width.
func NewIdentity(outBits int) *Identity {
	if outBits < 1 || outBits > 64 {
		panic(fmt.Sprintf("hash: identity output width %d out of range [1,64]", outBits))
	}
	return &Identity{bits: outBits}
}

// Hash implements Func.
func (id *Identity) Hash(addr uint64) uint64 {
	if id.bits == 64 {
		return addr
	}
	return addr & (1<<id.bits - 1)
}

// Bits implements Func.
func (id *Identity) Bits() int { return id.bits }
