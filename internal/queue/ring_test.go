package queue

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := NewRing[int](3)
	if !r.Empty() || r.Full() || r.Len() != 0 || r.Cap() != 3 {
		t.Fatalf("fresh ring state: len=%d cap=%d empty=%v full=%v", r.Len(), r.Cap(), r.Empty(), r.Full())
	}
	for i := 1; i <= 3; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) failed on non-full ring", i)
		}
	}
	if !r.Full() {
		t.Fatal("ring with Cap pushes should be full")
	}
	if r.Push(4) {
		t.Fatal("Push on full ring should fail")
	}
	for i := 1; i <= 3; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring should fail")
	}
}

func TestRingPeekAndAt(t *testing.T) {
	r := NewRing[string](4)
	if _, ok := r.Peek(); ok {
		t.Fatal("Peek on empty ring should fail")
	}
	r.Push("a")
	r.Push("b")
	r.Push("c")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v want a,true", v, ok)
	}
	if r.Len() != 3 {
		t.Fatalf("Peek must not consume; len=%d", r.Len())
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Errorf("At(%d) = %q want %q", i, got, w)
		}
	}
}

func TestRingWrapAround(t *testing.T) {
	r := NewRing[int](2)
	for i := 0; i < 100; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d", i)
		}
		if !r.Push(i + 1000) {
			t.Fatalf("push %d", i+1000)
		}
		if v, _ := r.Pop(); v != i {
			t.Fatalf("pop = %d want %d", v, i)
		}
		if v, _ := r.Pop(); v != i+1000 {
			t.Fatalf("pop = %d want %d", v, i+1000)
		}
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing[int](4)
	r.Push(1)
	r.Push(2)
	r.Reset()
	if !r.Empty() {
		t.Fatal("Reset should empty the ring")
	}
	r.Push(7)
	if v, ok := r.Pop(); !ok || v != 7 {
		t.Fatalf("after Reset Pop = %d,%v want 7,true", v, ok)
	}
}

func TestRingPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRing(%d) should panic", c)
				}
			}()
			NewRing[int](c)
		}()
	}
}

func TestRingAtPanicsOutOfRange(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	for _, i := range []int{-1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) should panic with len 1", i)
				}
			}()
			r.At(i)
		}()
	}
}

// TestRingFIFOProperty drives a ring against a reference slice queue
// with random push/pop sequences and checks they always agree.
func TestRingFIFOProperty(t *testing.T) {
	f := func(capRaw uint8, seed uint64, opsRaw uint16) bool {
		capacity := int(capRaw%16) + 1
		ops := int(opsRaw % 512)
		rng := rand.New(rand.NewPCG(seed, 42))
		r := NewRing[uint64](capacity)
		var ref []uint64
		for i := 0; i < ops; i++ {
			if rng.IntN(2) == 0 {
				v := rng.Uint64()
				pushed := r.Push(v)
				if pushed != (len(ref) < capacity) {
					return false
				}
				if pushed {
					ref = append(ref, v)
				}
			} else {
				v, ok := r.Pop()
				if ok != (len(ref) > 0) {
					return false
				}
				if ok {
					if v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			}
			if r.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
