package workload

import (
	"testing"
)

func TestUniformDeterministic(t *testing.T) {
	a := NewUniform(1, 1024, 1, 0.5, 8)
	b := NewUniform(1, 1024, 1, 0.5, 8)
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x.Kind != y.Kind || x.Addr != y.Addr {
			t.Fatalf("op %d diverged: %+v vs %+v", i, x, y)
		}
	}
}

func TestUniformRespectsAddrSpace(t *testing.T) {
	g := NewUniform(2, 100, 1, 0, 8)
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			t.Fatalf("writeFrac=0 produced %v", op.Kind)
		}
		if op.Addr >= 100 {
			t.Fatalf("address %d out of space", op.Addr)
		}
	}
}

func TestUniformWriteFraction(t *testing.T) {
	g := NewUniform(3, 0, 1, 0.25, 8)
	writes := 0
	const n = 10000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Kind == OpWrite {
			writes++
			if len(op.Data) != 8 {
				t.Fatalf("write data %d bytes want 8", len(op.Data))
			}
		}
	}
	if writes < n/5 || writes > n/3 {
		t.Fatalf("writes = %d/%d, want ~25%%", writes, n)
	}
}

func TestUniformDutyCycle(t *testing.T) {
	g := NewUniform(4, 0, 0.5, 0, 8)
	idle := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Next().Kind == OpIdle {
			idle++
		}
	}
	if idle < n*4/10 || idle > n*6/10 {
		t.Fatalf("idle = %d/%d want ~50%%", idle, n)
	}
}

func TestStride(t *testing.T) {
	g := NewStride(100, 7)
	for i := 0; i < 10; i++ {
		op := g.Next()
		if op.Kind != OpRead || op.Addr != 100+uint64(i)*7 {
			t.Fatalf("op %d = %+v", i, op)
		}
	}
}

func TestRepeat(t *testing.T) {
	g := NewRepeat(42)
	for i := 0; i < 5; i++ {
		if op := g.Next(); op.Addr != 42 || op.Kind != OpRead {
			t.Fatalf("op %d = %+v", i, op)
		}
	}
}

func TestCycle(t *testing.T) {
	g := NewCycle(1, 2, 3)
	want := []uint64{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		if op := g.Next(); op.Addr != w {
			t.Fatalf("op %d addr %d want %d", i, op.Addr, w)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewZipf(5, 1000, 1.2, 0)
	counts := map[uint64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.Next().Addr]++
	}
	// Rank 1 must dominate rank 100 heavily under s=1.2.
	if counts[0] < 20*counts[99] {
		t.Fatalf("rank1=%d rank100=%d: not Zipf-skewed", counts[0], counts[99])
	}
	// Every address stays in range.
	for a := range counts {
		if a >= 1000 {
			t.Fatalf("address %d out of population", a)
		}
	}
}

func TestOnOffGating(t *testing.T) {
	g := NewOnOff(NewRepeat(1), 3, 2)
	var kinds []OpKind
	for i := 0; i < 10; i++ {
		kinds = append(kinds, g.Next().Kind)
	}
	want := []OpKind{OpRead, OpRead, OpRead, OpIdle, OpIdle, OpRead, OpRead, OpRead, OpIdle, OpIdle}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("cycle %d kind %v want %v", i, kinds[i], want[i])
		}
	}
}

func TestOracleAdversaryAllOneBank(t *testing.T) {
	oracle := func(addr uint64) int { return int(addr % 7) } // arbitrary mapping
	adv := NewOracleAdversary(oracle, 3, 50)
	seen := map[uint64]bool{}
	for i := 0; i < 150; i++ {
		op := adv.Next()
		if oracle(op.Addr) != 3 {
			t.Fatalf("address %d maps to bank %d, not target 3", op.Addr, oracle(op.Addr))
		}
		seen[op.Addr] = true
	}
	if len(seen) != 50 {
		t.Fatalf("distinct addresses %d want 50", len(seen))
	}
}

func TestBlindAdversaryStride(t *testing.T) {
	adv := NewBlindAdversary(32, 5)
	for i := 0; i < 10; i++ {
		op := adv.Next()
		if op.Addr%32 != 5 {
			t.Fatalf("address %d not congruent to 5 mod 32", op.Addr)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewUniform(1, 0, -0.1, 0, 8) },
		func() { NewUniform(1, 0, 0, 1.5, 8) },
		func() { NewCycle() },
		func() { NewZipf(1, 0, 1, 0) },
		func() { NewZipf(1, 10, 0, 0) },
		func() { NewOnOff(NewRepeat(1), 0, 1) },
		func() { NewOracleAdversary(func(uint64) int { return 0 }, 0, 0) },
		func() { NewBlindAdversary(0, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestIMIXDistribution(t *testing.T) {
	m := NewIMIX(3)
	counts := map[int]int{}
	const n = 24000
	var sum float64
	for i := 0; i < n; i++ {
		s := m.NextSize()
		counts[s]++
		sum += float64(s)
	}
	if len(counts) != 3 {
		t.Fatalf("sizes seen: %v", counts)
	}
	// 7:4:1 ratios within sampling noise.
	if c := counts[40]; c < n*7/12*9/10 || c > n*7/12*11/10 {
		t.Errorf("40B count %d outside 7/12 band", c)
	}
	if c := counts[1500]; c < n/12*8/10 || c > n/12*12/10 {
		t.Errorf("1500B count %d outside 1/12 band", c)
	}
	if mean := sum / n; mean < m.MeanSize()*0.95 || mean > m.MeanSize()*1.05 {
		t.Errorf("empirical mean %.1f vs %.1f", mean, m.MeanSize())
	}
}
