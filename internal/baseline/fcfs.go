// Package baseline implements the comparison memory controllers the
// VPNM experiments measure against: a conventional first-come
// first-served banked DRAM controller with plain bank-bit interleaving
// (the design whose 37–60% bus efficiency Section 3.1 quotes), and an
// ideal fixed-latency pipeline (what the programmer wishes memory was,
// and exactly the abstraction VPNM recreates on top of real banks).
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/hash"
	"repro/internal/queue"
)

// FCFSConfig parameterizes the conventional controller.
type FCFSConfig struct {
	// Banks, AccessLatency and WordBytes mirror the DRAM organization.
	Banks         int
	AccessLatency int
	WordBytes     int
	// QueueDepth bounds each per-bank FIFO; a full queue stalls, just
	// like a real controller back-pressuring the pipeline.
	QueueDepth int
	// Hash maps addresses to banks. Nil selects identity low-bit
	// interleaving — the conventional design. Supplying a universal
	// hash isolates how much of VPNM's win is randomization alone
	// (an ablation the benchmarks exercise).
	Hash hash.Func
	// RatioNum/RatioDen is the memory-side clock multiplier, matching
	// the core controller so comparisons are apples-to-apples. Zero
	// selects 1/1 (a conventional controller has no faster bus).
	RatioNum, RatioDen int
	// RowHitLatency/RowWords enable the open-row DRAM model (see
	// dram.Config): the common-case locality advantage a conventional
	// controller enjoys and VPNM's randomization deliberately forgoes.
	RowHitLatency, RowWords int
}

func (c FCFSConfig) withDefaults() FCFSConfig {
	if c.Banks == 0 {
		c.Banks = 32
	}
	if c.AccessLatency == 0 {
		c.AccessLatency = 20
	}
	if c.WordBytes == 0 {
		c.WordBytes = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 24
	}
	if c.RatioNum == 0 && c.RatioDen == 0 {
		c.RatioNum, c.RatioDen = 1, 1
	}
	return c
}

type fcfsRequest struct {
	isWrite  bool
	addr     uint64
	data     []byte
	tag      uint64
	issuedAt uint64
}

// FCFS is the conventional banked controller: per-bank FIFO queues,
// out-of-order completion across banks, and latency that varies with
// bank contention. It implements the same cycle interface as
// core.Controller so the same workloads drive both.
type FCFS struct {
	cfg      FCFSConfig
	h        hash.Func
	mod      *dram.Module
	queues   []*queue.Ring[fcfsRequest]
	inflight []struct {
		active bool
		req    fcfsRequest
		doneAt uint64
	}
	cycle     uint64
	memTime   uint64
	rrPtr     int
	nextTag   uint64
	requested bool
	queued    int

	reads, writes, stalls, completions uint64
	busBusy                            uint64
	comps                              []core.Completion
	// scratch holds one data buffer per completion delivered this tick;
	// unlike the VPNM controller, several banks can finish in one
	// interface cycle here, so each completion needs its own buffer.
	scratch [][]byte
}

// NewFCFS builds the conventional controller.
func NewFCFS(cfg FCFSConfig) (*FCFS, error) {
	cfg = cfg.withDefaults()
	if cfg.Banks&(cfg.Banks-1) != 0 || cfg.Banks < 1 {
		return nil, fmt.Errorf("baseline: Banks must be a positive power of two, got %d", cfg.Banks)
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("baseline: QueueDepth must be >= 1, got %d", cfg.QueueDepth)
	}
	mod, err := dram.NewModule(dram.Config{
		Banks: cfg.Banks, AccessLatency: cfg.AccessLatency, WordBytes: cfg.WordBytes,
		RowHitLatency: cfg.RowHitLatency, RowWords: cfg.RowWords,
	})
	if err != nil {
		return nil, err
	}
	h := cfg.Hash
	if h == nil {
		bits := 1
		for 1<<bits < cfg.Banks {
			bits++
		}
		h = hash.NewIdentity(bits)
	}
	f := &FCFS{
		cfg:    cfg,
		h:      h,
		mod:    mod,
		queues: make([]*queue.Ring[fcfsRequest], cfg.Banks),
	}
	f.inflight = make([]struct {
		active bool
		req    fcfsRequest
		doneAt uint64
	}, cfg.Banks)
	for i := range f.queues {
		f.queues[i] = queue.NewRing[fcfsRequest](cfg.QueueDepth)
	}
	return f, nil
}

// Bank returns the bank an address maps to.
func (f *FCFS) Bank(addr uint64) int {
	return int(f.h.Hash(addr)) & (f.cfg.Banks - 1)
}

// Read issues a read; the completion arrives whenever the bank gets to
// it — the whole point of this baseline is that the latency varies.
func (f *FCFS) Read(addr uint64) (uint64, error) {
	if f.requested {
		return 0, core.ErrSecondRequest
	}
	q := f.queues[f.Bank(addr)]
	if q.Full() {
		f.stalls++
		return 0, core.ErrStallBankQueue
	}
	tag := f.nextTag
	f.nextTag++
	q.Push(fcfsRequest{addr: addr, tag: tag, issuedAt: f.cycle})
	f.queued++
	f.requested = true
	f.reads++
	return tag, nil
}

// Write issues a write.
func (f *FCFS) Write(addr uint64, data []byte) error {
	if f.requested {
		return core.ErrSecondRequest
	}
	if len(data) > f.cfg.WordBytes {
		return fmt.Errorf("baseline: write of %d bytes exceeds word size %d", len(data), f.cfg.WordBytes)
	}
	q := f.queues[f.Bank(addr)]
	if q.Full() {
		f.stalls++
		return core.ErrStallBankQueue
	}
	q.Push(fcfsRequest{isWrite: true, addr: addr, data: append([]byte(nil), data...), issuedAt: f.cycle})
	f.queued++
	f.requested = true
	f.writes++
	return nil
}

// Tick advances one interface cycle. Completions are delivered as soon
// as the data is back from the bank — out of order with respect to
// other banks and with workload-dependent latency.
func (f *FCFS) Tick() []core.Completion {
	f.cycle++
	f.comps = f.comps[:0]
	target := f.cycle * uint64(f.cfg.RatioNum) / uint64(f.cfg.RatioDen)
	for f.memTime < target {
		m := f.memTime
		// Deliver any read whose bank finished.
		for b := range f.inflight {
			inf := &f.inflight[b]
			if inf.active && m >= inf.doneAt {
				if !inf.req.isWrite {
					buf := f.nextScratch()
					copy(buf, f.mod.Store().Read(inf.req.addr))
					f.comps = append(f.comps, core.Completion{
						Tag:         inf.req.tag,
						Addr:        inf.req.addr,
						Data:        buf,
						IssuedAt:    inf.req.issuedAt,
						DeliveredAt: f.cycle,
					})
					f.completions++
				}
				inf.active = false
			}
		}
		// One bus grant per memory cycle, rotating priority.
		if f.queued > 0 {
			for i := 0; i < f.cfg.Banks; i++ {
				b := (f.rrPtr + i) % f.cfg.Banks
				if f.inflight[b].active || f.queues[b].Empty() || !f.mod.BankFree(b, m) {
					continue
				}
				req, _ := f.queues[b].Pop()
				f.queued--
				var doneAt uint64
				if req.isWrite {
					doneAt = f.mod.IssueWrite(b, req.addr, req.data, m)
				} else {
					doneAt, _, _ = f.mod.IssueRead(b, req.addr, m)
				}
				f.inflight[b].active = true
				f.inflight[b].req = req
				f.inflight[b].doneAt = doneAt
				f.rrPtr = (b + 1) % f.cfg.Banks
				f.busBusy++
				break
			}
		}
		f.memTime++
	}
	f.requested = false
	return f.comps
}

// nextScratch hands out the buffer for the len(f.comps)-th completion
// of the current tick; buffers are valid until the next Tick.
func (f *FCFS) nextScratch() []byte {
	if len(f.comps) < len(f.scratch) {
		return f.scratch[len(f.comps)]
	}
	buf := make([]byte, f.cfg.WordBytes)
	f.scratch = append(f.scratch, buf)
	return buf
}

// Outstanding reports reads issued but not delivered.
func (f *FCFS) Outstanding() uint64 { return f.reads - f.completions }

// Stats reports basic counters.
func (f *FCFS) Stats() (reads, writes, stalls, completions uint64) {
	return f.reads, f.writes, f.stalls, f.completions
}

// RowHits reports open-row hits when the open-row model is enabled.
func (f *FCFS) RowHits() uint64 { return f.mod.RowHits() }

// BusUtilization is the fraction of memory cycles that issued.
func (f *FCFS) BusUtilization() float64 {
	if f.memTime == 0 {
		return 0
	}
	return float64(f.busBusy) / float64(f.memTime)
}
