package hw

import (
	"sort"

	"repro/internal/analysis"
)

// DesignPoint is one evaluated configuration in the Figure 7 design
// space exploration.
type DesignPoint struct {
	Params
	AreaMM2  float64
	EnergyNJ float64
	MTS      float64
}

// SweepGrid enumerates the architectural grid the paper explores
// ("several thousand configurations with varying architectural
// parameters"): bank counts, queue depths and delay-buffer sizes for a
// fixed bus scaling ratio.
type SweepGrid struct {
	Banks  []int
	Queues []int
	Rows   []int
	L      int
	R      float64
	// Workers bounds the fan-out of the Markov solves behind the sweep;
	// <= 0 selects GOMAXPROCS. Every grid point is an independent chain,
	// so the result is identical at any worker count.
	Workers int
}

// DefaultGrid mirrors the ranges of Figures 4, 6 and 7.
func DefaultGrid(r float64) SweepGrid {
	return SweepGrid{
		Banks:  []int{4, 8, 16, 32, 64},
		Queues: []int{8, 16, 24, 32, 40, 48, 56, 64},
		Rows:   []int{16, 32, 48, 64, 80, 96, 112, 128},
		L:      DefaultL,
		R:      r,
	}
}

// Sweep evaluates every grid point. Bank-queue MTS depends only on
// (B, Q, R), so the expensive Markov solves run once per (B, Q) pair —
// fanned across the worker pool, since every chain is independent —
// and are shared across the K axis. Point order is the (B, Q, K)
// nesting order regardless of worker count.
func Sweep(g SweepGrid) []DesignPoint {
	bankqMTS := analysis.MTSSurface(g.Banks, g.Queues, g.L, g.R, true, g.Workers)
	out := make([]DesignPoint, 0, len(g.Banks)*len(g.Queues)*len(g.Rows))
	for bi, b := range g.Banks {
		for qi, q := range g.Queues {
			for _, k := range g.Rows {
				p := Params{B: b, Q: q, K: k, L: g.L, R: g.R}.WithDefaults()
				dbuf := analysis.DelayBufferMTS(b, k, p.Delay())
				mts := combineRates(dbuf, bankqMTS[bi][qi])
				out = append(out, DesignPoint{
					Params:   p,
					AreaMM2:  p.AreaMM2(),
					EnergyNJ: p.EnergyNJ(),
					MTS:      mts,
				})
			}
		}
	}
	return out
}

func combineRates(a, b float64) float64 {
	switch {
	case a <= 0 || b <= 0:
		return 0
	}
	mts := 1 / (1/a + 1/b)
	if mts > analysis.MTSCap {
		return analysis.MTSCap
	}
	return mts
}

// ParetoFront filters points to the area/MTS Pareto frontier: a point
// survives if no other point has both smaller-or-equal area and
// strictly larger MTS. The result is sorted by area.
func ParetoFront(points []DesignPoint) []DesignPoint {
	sorted := append([]DesignPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].AreaMM2 != sorted[j].AreaMM2 {
			return sorted[i].AreaMM2 < sorted[j].AreaMM2
		}
		return sorted[i].MTS > sorted[j].MTS
	})
	var front []DesignPoint
	best := -1.0
	for _, p := range sorted {
		if p.MTS > best {
			front = append(front, p)
			best = p.MTS
		}
	}
	return front
}

// BestUnderArea returns the highest-MTS point within an area budget,
// the selection rule behind Table 2's "optimal design parameters".
// ok is false when no point fits the budget.
func BestUnderArea(points []DesignPoint, budget float64) (DesignPoint, bool) {
	var best DesignPoint
	found := false
	for _, p := range points {
		if p.AreaMM2 > budget {
			continue
		}
		if !found || p.MTS > best.MTS || (p.MTS == best.MTS && p.AreaMM2 < best.AreaMM2) {
			best = p
			found = true
		}
	}
	return best, found
}
