// Gated benchmark for the telemetry probe: the nil-probe hot path must
// not regress against the pre-telemetry seed (gated at 0 allocs/op and
// pinned comps/cycle), and the probed path quantifies what full
// per-cycle observability costs. Run with
//
//	go test -bench=ProbeOverhead -benchmem
package vpnm_test

import (
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/multichannel"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func benchProbeTick(b *testing.B, probed bool) {
	const channels = 4
	cfg := core.Config{Banks: 16, QueueDepth: 16, DelayRows: 64, WordBytes: 8, HashSeed: 9}
	var opts []multichannel.Option
	if probed {
		reg := telemetry.NewRegistry()
		opts = append(opts, multichannel.WithProbes(func(ch int) telemetry.Probe {
			label := strconv.Itoa(ch)
			p := telemetry.NewMemProbe(reg, label, cfg.Banks, cfg.QueueDepth, cfg.Banks*cfg.DelayRows)
			est := telemetry.NewMTSEstimator(cfg.QueueDepth)
			est.Model(cfg.Banks, core.DefaultAccessLatency, 1.3)
			p.AttachEstimator(reg, est, label)
			return p
		}))
	}
	m, err := multichannel.New(cfg, channels, 21, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	// Read-only load, as in BenchmarkTickParallel: write data slices
	// would mask the probe path's own allocation behaviour.
	gen := workload.NewUniform(5, 0, 1, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	var done int
	for i := 0; i < b.N; i++ {
		for j := 0; j < channels; j++ {
			m.Read(gen.Next().Addr) //nolint:errcheck // a stalled slot is just lost offered load
		}
		done += len(m.Tick())
	}
	b.ReportMetric(float64(done)/float64(b.N), "comps/cycle")
}

// BenchmarkProbeOverhead measures the same 4-channel tick loop as
// BenchmarkTickParallel with no probe (the seed configuration —
// benchgate fails the build if this regresses) and with a full MemProbe
// plus MTS estimator on every channel. Both paths must hold 0
// allocs/op.
func BenchmarkProbeOverhead(b *testing.B) {
	b.Run("nil-probe", func(b *testing.B) { benchProbeTick(b, false) })
	b.Run("probe", func(b *testing.B) { benchProbeTick(b, true) })
}
