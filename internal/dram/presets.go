package dram

// Preset is a named DRAM organization drawn from the devices the paper
// discusses in Section 3.1. The bank counts are the architecturally
// visible ones: SDRAM/DDR expose few banks (which is why Section 5.2
// finds they "cannot achieve a reasonable MTS"), while RDRAM devices
// expose 32 banks and a fully populated RIMM module 32*16 = 512.
type Preset struct {
	Name        string
	Description string
	Config      Config

	// MeasuredEfficiency is the published common-case bus efficiency of
	// the device family (Section 3.1, citing RamBus measurements): the
	// fraction of peak bandwidth achieved under ordinary access streams,
	// with 80-85% of the loss attributed to bank conflicts. Zero when no
	// figure was published for the family.
	MeasuredEfficiency float64
}

// Presets lists the device families used across the paper's analysis.
// All share L = 20 (the paper's conservative ratio of bank access time
// to transfer time, from the Samsung Rambus datasheet) and 64-byte data
// words (the cell size used by the packet-buffering comparison).
func Presets() []Preset {
	const l = 20
	const word = 64
	return []Preset{
		{
			Name:               "pc133-sdram",
			Description:        "PC133 SDRAM, 4 banks; ~60% measured bus efficiency",
			Config:             Config{Banks: 4, AccessLatency: l, WordBytes: word},
			MeasuredEfficiency: 0.60,
		},
		{
			Name:               "ddr266-sdram",
			Description:        "DDR266 SDRAM, 4 banks; ~37% measured bus efficiency",
			Config:             Config{Banks: 4, AccessLatency: l, WordBytes: word},
			MeasuredEfficiency: 0.37,
		},
		{
			Name:        "rdram-device",
			Description: "Single RDRAM device (Samsung MR18R162GDF0-CM8 class), 32 banks",
			Config:      Config{Banks: 32, AccessLatency: l, WordBytes: word},
		},
		{
			Name:        "rdram-rimm",
			Description: "Fully populated RIMM module, 16 devices x 32 banks = 512 banks",
			Config:      Config{Banks: 512, AccessLatency: l, WordBytes: word},
		},
	}
}

// PresetByName returns the preset with the given name and whether it
// exists.
func PresetByName(name string) (Preset, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}
