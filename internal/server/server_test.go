package server_test

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/multichannel"
	"repro/internal/recovery"
	"repro/internal/server"
	"repro/internal/wire"
)

func testMem(t *testing.T, cfg core.Config, channels int) *multichannel.Memory {
	t.Helper()
	m, err := multichannel.New(cfg, channels, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func smallCfg() core.Config {
	return core.Config{Banks: 8, QueueDepth: 16, DelayRows: 64, WordBytes: 8}
}

// harness speaks raw wire to an engine over net.Pipe, accumulating
// whatever the server sends until an awaited record shows up.
type harness struct {
	t       *testing.T
	nc      net.Conn
	enc     *wire.Encoder
	dec     *wire.Decoder
	replies map[uint64]wire.Reply
	comps   map[uint64]wire.Completion
	stats   map[uint64]wire.Stats
}

func newHarness(t *testing.T, eng *server.Engine) *harness {
	t.Helper()
	cli, srv := net.Pipe()
	cli.SetDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	if err := eng.ServeConn(srv); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return &harness{
		t:       t,
		nc:      cli,
		enc:     wire.NewEncoder(cli),
		dec:     wire.NewDecoder(cli),
		replies: make(map[uint64]wire.Reply),
		comps:   make(map[uint64]wire.Completion),
		stats:   make(map[uint64]wire.Stats),
	}
}

func (h *harness) send(reqs ...wire.Request) {
	h.t.Helper()
	if err := h.enc.Requests(0, reqs); err != nil {
		h.t.Fatal(err)
	}
}

// recvOne decodes one frame into the accumulators.
func (h *harness) recvOne() {
	h.t.Helper()
	f, err := h.dec.Next()
	if err != nil {
		h.t.Fatalf("decode: %v", err)
	}
	switch f.Type {
	case wire.FrameReplies:
		for _, r := range f.Replies {
			h.replies[r.Seq] = r
		}
	case wire.FrameCompletions:
		for _, c := range f.Completions {
			c.Data = append([]byte(nil), c.Data...) // outlives the decoder buffer
			h.comps[c.Seq] = c
		}
	case wire.FrameStats:
		h.stats[f.Stats.Seq] = f.Stats
	default:
		h.t.Fatalf("server sent frame type %d", f.Type)
	}
}

func (h *harness) awaitReply(seq uint64) wire.Reply {
	h.t.Helper()
	for {
		if r, ok := h.replies[seq]; ok {
			return r
		}
		h.recvOne()
	}
}

func (h *harness) awaitComp(seq uint64) wire.Completion {
	h.t.Helper()
	for {
		if c, ok := h.comps[seq]; ok {
			return c
		}
		h.recvOne()
	}
}

func (h *harness) awaitStats(seq uint64) wire.Stats {
	h.t.Helper()
	for {
		if s, ok := h.stats[seq]; ok {
			return s
		}
		h.recvOne()
	}
}

func TestReadWriteFixedD(t *testing.T) {
	mem := testMem(t, smallCfg(), 2)
	eng, err := server.New(server.Config{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	h := newHarness(t, eng)

	word := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	h.send(
		wire.Request{Op: wire.OpWrite, Seq: 1, Addr: 0xcafe, Data: word},
		wire.Request{Op: wire.OpRead, Seq: 2, Addr: 0xcafe},
		wire.Request{Op: wire.OpFlush, Seq: 3},
	)
	if r := h.awaitReply(1); r.Status != wire.StatusAccepted {
		t.Fatalf("write reply = %+v, want StatusAccepted", r)
	}
	comp := h.awaitComp(2)
	if !bytes.Equal(comp.Data, word) {
		t.Fatalf("read returned %x, want %x", comp.Data, word)
	}
	if d := comp.DeliveredAt - comp.IssuedAt; d != uint64(mem.Delay()) {
		t.Fatalf("completion delta = %d cycles, want D = %d", d, mem.Delay())
	}
	if r := h.awaitReply(3); r.Status != wire.StatusFlushed {
		t.Fatalf("flush reply = %+v, want StatusFlushed", r)
	}
	h.send(wire.Request{Op: wire.OpStats, Seq: 4})
	s := h.awaitStats(4)
	if s.Reads != 1 || s.Writes != 1 || s.Completions != 1 || s.Outstanding != 0 {
		t.Fatalf("stats = %+v, want 1 read, 1 write, 1 completion, 0 outstanding", s)
	}
	if s.Delay != uint64(mem.Delay()) || s.Channels != 2 || s.Conns != 1 {
		t.Fatalf("stats = %+v, want D=%d channels=2 conns=1", s, mem.Delay())
	}
}

func TestPipelinedReadsAllFixedD(t *testing.T) {
	mem := testMem(t, smallCfg(), 2)
	eng, err := server.New(server.Config{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	h := newHarness(t, eng)

	const n = 64
	reqs := make([]wire.Request, 0, n+1)
	for i := uint64(0); i < n; i++ {
		word := make([]byte, 8)
		word[0] = byte(i)
		reqs = append(reqs, wire.Request{Op: wire.OpWrite, Seq: i, Addr: i * 64, Data: word})
	}
	reqs = append(reqs, wire.Request{Op: wire.OpFlush, Seq: 1000})
	h.send(reqs...)
	h.awaitReply(1000)

	reqs = reqs[:0]
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, wire.Request{Op: wire.OpRead, Seq: 2000 + i, Addr: i * 64})
	}
	reqs = append(reqs, wire.Request{Op: wire.OpFlush, Seq: 3000})
	h.send(reqs...)
	for i := uint64(0); i < n; i++ {
		comp := h.awaitComp(2000 + i)
		if comp.Data[0] != byte(i) {
			t.Fatalf("read %d returned %x", i, comp.Data)
		}
		if d := comp.DeliveredAt - comp.IssuedAt; d != uint64(mem.Delay()) {
			t.Fatalf("read %d delta = %d, want %d", i, d, mem.Delay())
		}
	}
	h.awaitReply(3000)
}

// TestStallSurfaced forces bank-queue stalls (one bank, queue depth one)
// with the DropWithAccounting policy, which must surface them as
// StatusStall replies carrying the cause code.
func TestStallSurfaced(t *testing.T) {
	cfg := core.Config{Banks: 1, QueueDepth: 1, WordBytes: 8}
	mem := testMem(t, cfg, 1)
	eng, err := server.New(server.Config{Mem: mem, Policy: recovery.DropWithAccounting})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	h := newHarness(t, eng)

	const n = 16
	reqs := make([]wire.Request, 0, n+1)
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, wire.Request{Op: wire.OpRead, Seq: i, Addr: i})
	}
	reqs = append(reqs, wire.Request{Op: wire.OpFlush, Seq: 100})
	h.send(reqs...)
	h.awaitReply(100)

	var stalled, completed int
	for i := uint64(0); i < n; i++ {
		// A reply frame can overtake an earlier-staged completion frame,
		// so receive until this read resolves one way or the other.
		for {
			_, isReply := h.replies[i]
			_, isComp := h.comps[i]
			if isReply || isComp {
				break
			}
			h.recvOne()
		}
		if r, ok := h.replies[i]; ok {
			if r.Status != wire.StatusStall || r.Code == wire.CodeNone {
				t.Fatalf("reply %d = %+v, want StatusStall with a cause", i, r)
			}
			stalled++
			continue
		}
		comp := h.comps[i]
		if d := comp.DeliveredAt - comp.IssuedAt; d != uint64(mem.Delay()) {
			t.Fatalf("read %d delta = %d, want %d", i, d, mem.Delay())
		}
		completed++
	}
	if stalled == 0 {
		t.Fatal("one-bank queue-depth-one geometry produced no stalls")
	}
	h.send(wire.Request{Op: wire.OpStats, Seq: 200})
	if s := h.awaitStats(200); s.Stalls != uint64(stalled) || s.Completions != uint64(completed) {
		t.Fatalf("stats = %+v, want %d stalls and %d completions", s, stalled, completed)
	}
}

// TestOversizeWriteDropped sends a write wider than the memory word;
// the server must drop that request, not the connection.
func TestOversizeWriteDropped(t *testing.T) {
	mem := testMem(t, smallCfg(), 1)
	eng, err := server.New(server.Config{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	h := newHarness(t, eng)

	h.send(
		wire.Request{Op: wire.OpWrite, Seq: 1, Addr: 0, Data: make([]byte, 64)},
		wire.Request{Op: wire.OpWrite, Seq: 2, Addr: 0, Data: make([]byte, 8)},
	)
	if r := h.awaitReply(1); r.Status != wire.StatusDropped || r.Code != wire.CodeOther {
		t.Fatalf("oversize write reply = %+v, want StatusDropped/CodeOther", r)
	}
	if r := h.awaitReply(2); r.Status != wire.StatusAccepted {
		t.Fatalf("following write reply = %+v, want StatusAccepted", r)
	}
}

// TestClientFrameTypeRejected: a client that sends a server-to-client
// frame type gets its connection closed.
func TestClientFrameTypeRejected(t *testing.T) {
	mem := testMem(t, smallCfg(), 1)
	eng, err := server.New(server.Config{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	h := newHarness(t, eng)

	if err := h.enc.Replies(0, []wire.Reply{{Status: wire.StatusAccepted, Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.dec.Next(); err == nil {
		t.Fatal("connection survived a protocol violation")
	}
}

// TestLockstepDeterministic runs the same frame sequence against two
// lockstep engines and requires bit-identical ledgers: cycle count,
// channel-busy retries, everything.
func TestLockstepDeterministic(t *testing.T) {
	run := func() server.Snapshot {
		mem := testMem(t, smallCfg(), 2)
		eng, err := server.New(server.Config{Mem: mem, Lockstep: true})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		h := newHarness(t, eng)

		var reqs []wire.Request
		for i := uint64(0); i < 32; i++ {
			word := make([]byte, 8)
			word[0] = byte(i)
			reqs = append(reqs, wire.Request{Op: wire.OpWrite, Seq: i, Addr: i * 7, Data: word})
		}
		h.send(reqs...)
		h.send(wire.Request{Op: wire.OpFlush, Seq: 100})
		h.awaitReply(100)
		reqs = reqs[:0]
		for i := uint64(0); i < 32; i++ {
			reqs = append(reqs, wire.Request{Op: wire.OpRead, Seq: 200 + i, Addr: i * 7})
		}
		h.send(reqs...)
		h.send(wire.Request{Op: wire.OpFlush, Seq: 300})
		h.awaitReply(300)
		for i := uint64(0); i < 32; i++ {
			if comp := h.awaitComp(200 + i); comp.Data[0] != byte(i) {
				t.Fatalf("read %d returned %x", i, comp.Data)
			}
		}
		s := eng.Snapshot()
		s.Conns = 0 // the harness conn may or may not have unregistered yet
		return s
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("lockstep runs diverged:\n a = %+v\n b = %+v", a, b)
	}
	if a.Cycle == 0 || a.Completions != 32 {
		t.Fatalf("suspicious lockstep ledger: %+v", a)
	}
}

func TestEngineCloseUnblocksConn(t *testing.T) {
	mem := testMem(t, smallCfg(), 1)
	eng, err := server.New(server.Config{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, eng)
	h.send(wire.Request{Op: wire.OpRead, Seq: 1, Addr: 9})
	h.awaitComp(1)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.dec.Next(); err == nil {
		t.Fatal("connection survived engine close")
	}
	if err := eng.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
}
