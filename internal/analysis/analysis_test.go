package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestLogBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 1, 5}, {5, 2, 10},
		{10, 3, 120}, {52, 5, 2598960},
	}
	for _, tc := range cases {
		got := math.Exp(LogBinom(tc.n, tc.k))
		if math.Abs(got-tc.want) > tc.want*1e-9 {
			t.Errorf("C(%d,%d) = %v want %v", tc.n, tc.k, got, tc.want)
		}
	}
	for _, tc := range [][2]int{{3, 5}, {-1, 0}, {5, -1}} {
		if !math.IsInf(LogBinom(tc[0], tc[1]), -1) {
			t.Errorf("C(%d,%d) should be -Inf", tc[0], tc[1])
		}
	}
}

func TestDelayBufferStallProbSmallCase(t *testing.T) {
	// B=2, K=2, D=3: p = C(2,1)*(1/2)^1 = 1.
	if got := DelayBufferStallProb(2, 2, 3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("p = %v want 1", got)
	}
	// B=4, K=3, D=4: p = C(3,2)*(1/4)^2 = 3/16.
	if got := DelayBufferStallProb(4, 3, 4); math.Abs(got-3.0/16) > 1e-12 {
		t.Fatalf("p = %v want 3/16", got)
	}
}

func TestDelayBufferMTSMonotonicInK(t *testing.T) {
	d := DelayWindow(8, 20)
	prev := 0.0
	for k := 4; k <= 128; k += 4 {
		mts := DelayBufferMTS(32, k, d)
		if mts < prev {
			t.Fatalf("MTS not monotone at K=%d: %v < %v", k, mts, prev)
		}
		prev = mts
	}
}

func TestDelayBufferMTSMatchesPaperQuote(t *testing.T) {
	// Section 5.1: "for B = 32 ... we can get a MTS of 10^12 for K = 32"
	// (Figure 4, with the optimal Q=8 pairing and R=1.3). The paper reads
	// values off a log-scale plot, so agreement within ~two decades is
	// the strongest check available.
	d := DelayWindow(8, 20)
	mts := DelayBufferMTS(32, 32, d)
	if mts < 1e10 || mts > 1e14 {
		t.Fatalf("MTS(B=32,K=32,D=%d) = %.3g, want within two decades of 1e12", d, mts)
	}
	// And B=64 should track B=32 closely ("follows very closely").
	mts64 := DelayBufferMTS(64, 32, d)
	if mts64 < mts {
		t.Fatalf("B=64 (%.3g) should beat B=32 (%.3g)", mts64, mts)
	}
}

func TestDelayBufferMTSImpossibleWindow(t *testing.T) {
	// K-1 > D-1: a window can never gather K conflicting requests.
	if got := DelayBufferMTS(32, 100, 50); !math.IsInf(got, 1) {
		t.Fatalf("MTS = %v want +Inf", got)
	}
}

func TestDelayBufferMTSCertainStall(t *testing.T) {
	// With B=1 every request is a conflict; MTS collapses to ~D.
	if got := DelayBufferMTS(1, 4, 100); got != 100 {
		t.Fatalf("MTS = %v want D=100", got)
	}
}

func TestPaperDelay(t *testing.T) {
	if got := PaperDelay(64, 20, 1.3); got != 985 {
		t.Fatalf("PaperDelay(64,20,1.3) = %d want 985 (the paper's ~1000ns)", got)
	}
	if got := PaperDelay(8, 20, 1.0); got != 160 {
		t.Fatalf("PaperDelay(8,20,1.0) = %d want 160", got)
	}
}

func TestBankQueueChainMatrixRowStochastic(t *testing.T) {
	c, err := NewBankQueueChain(8, 2, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Matrix()
	if len(m) != c.States()+1 {
		t.Fatalf("matrix size %d want %d", len(m), c.States()+1)
	}
	for i, row := range m {
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative probability at row %d", i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Figure 5 structure: from the idle state an arrival jumps L states.
	if m[0][3] != c.p || m[0][0] != 1-c.p {
		t.Fatalf("idle row wrong: %v", m[0])
	}
	// From the top state an arrival fails.
	top := c.States() - 1
	if m[top][len(m)-1] != c.p {
		t.Fatalf("top state must fail on arrival")
	}
}

func TestBankQueueStepMatchesMatrix(t *testing.T) {
	// The sparse Step must agree with explicit matrix multiplication.
	c, _ := NewBankQueueChain(4, 2, 3, 1.25)
	m := c.Matrix()
	n := c.States()
	v := make([]float64, n)
	scratch := make([]float64, n)
	v[0] = 1
	ref := make([]float64, n+1)
	ref[0] = 1
	for step := 0; step < 200; step++ {
		c.Step(v, scratch)
		next := make([]float64, n+1)
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				next[j] += ref[i] * m[i][j]
			}
		}
		ref = next
		for i := 0; i < n; i++ {
			if math.Abs(v[i]-ref[i]) > 1e-12 {
				t.Fatalf("step %d state %d: sparse %v dense %v", step, i, v[i], ref[i])
			}
		}
	}
}

func TestBankQueueMTSUnstableLoad(t *testing.T) {
	// B=4, L=20, R=1.0: rho = 5 >> 1, the queue fills almost
	// immediately; MTS is on the order of the queue length in cycles.
	c, _ := NewBankQueueChain(4, 8, 20, 1.0)
	if rho := c.Utilization(); rho < 1 {
		t.Fatalf("utilization %v should exceed 1", rho)
	}
	mts := c.MTS()
	if mts > 1e5 {
		t.Fatalf("unstable queue MTS = %.3g, should be tiny", mts)
	}
}

func TestBankQueueMTSMatchesPaperQuote(t *testing.T) {
	// Section 5.2: "We can get an MTS of 10^14 for Q = 64 using 32 or 64
	// banks" at R=1.3 — under the strict round-robin bus the paper's
	// hardware uses (slotted model). Log-plot read-off tolerance.
	mts32 := SlottedBankQueueMTS(32, 64, 20, 1.3)
	if mts32 < 1e12 || mts32 > 1e16 {
		t.Fatalf("MTS(B=32,Q=64) = %.3g want within two decades of 1e14", mts32)
	}
	// "for B = 32 and B = 64, the curve for MTS is almost the same":
	// under the slotted bus both run at load 1/R.
	mts64 := SlottedBankQueueMTS(64, 64, 20, 1.3)
	if mts64 < mts32/1e3 || mts64 > mts32*1e3 {
		t.Fatalf("B=64 MTS %.3g strays from B=32 MTS %.3g", mts64, mts32)
	}
	// "a lower number of banks (B < 32) can only provide a maximum MTS
	// value of 10^2" — B=8 is deep in unstable territory.
	mts8 := SlottedBankQueueMTS(8, 64, 20, 1.3)
	if mts8 > 1e5 {
		t.Fatalf("B=8 MTS = %.3g, should be tiny (unstable)", mts8)
	}
}

func TestSlottedChainProperties(t *testing.T) {
	// The strict round-robin bus serves one request per max(L, B)
	// memory cycles, so the offered load is 1/R for every B >= L.
	for _, b := range []int{32, 64, 128} {
		c, err := NewSlottedBankQueueChain(b, 8, 20, 1.3)
		if err != nil {
			t.Fatal(err)
		}
		if rho := c.Utilization(); math.Abs(rho-1/1.3) > 1e-12 {
			t.Fatalf("B=%d slotted load = %v want 1/1.3", b, rho)
		}
	}
	// Below L the bank itself is the bottleneck: same as work-conserving.
	c, _ := NewSlottedBankQueueChain(8, 8, 20, 1.3)
	wc, _ := NewBankQueueChain(8, 8, 20, 1.3)
	if c.Utilization() != wc.Utilization() {
		t.Fatal("for B <= L the slotted and work-conserving loads must agree")
	}
	// At R = 1.0 the slotted queue is critically loaded: no queue depth
	// buys a large MTS (the Figure 7 R=1.0 floor).
	if mts := SlottedBankQueueMTS(32, 64, 20, 1.0); mts > 1e8 {
		t.Fatalf("critical R=1.0 MTS = %.3g, should stay small", mts)
	}
	// The work-conserving scheduler strictly dominates the slotted one.
	slot := SlottedBankQueueMTS(32, 16, 20, 1.3)
	work := BankQueueMTS(32, 16, 20, 1.3)
	if work < slot {
		t.Fatalf("work-conserving MTS %.3g below slotted %.3g", work, slot)
	}
}

func TestSlottedMonotonicInQ(t *testing.T) {
	prev := 0.0
	for q := 8; q <= 64; q += 8 {
		mts := SlottedBankQueueMTS(32, q, 20, 1.3)
		if mts < prev {
			t.Fatalf("slotted MTS not monotone at Q=%d: %v < %v", q, mts, prev)
		}
		prev = mts
	}
}

func TestBankQueueMTSMonotonicInQ(t *testing.T) {
	prev := 0.0
	for q := 4; q <= 64; q += 4 {
		mts := BankQueueMTS(32, q, 20, 1.3)
		if mts < prev {
			t.Fatalf("MTS not monotone at Q=%d: %v < %v", q, mts, prev)
		}
		prev = mts
	}
	if prev < 1e12 {
		t.Fatalf("Q=64 MTS %.3g too small", prev)
	}
}

func TestBankQueueMTSIncreasesWithR(t *testing.T) {
	m10 := BankQueueMTS(32, 16, 20, 1.0)
	m13 := BankQueueMTS(32, 16, 20, 1.3)
	m15 := BankQueueMTS(32, 16, 20, 1.5)
	if !(m10 < m13 && m13 < m15) {
		t.Fatalf("MTS should grow with R: %v %v %v", m10, m13, m15)
	}
}

// TestBankQueueMTSAgainstDirectSimulation cross-checks the
// quasi-stationary solver against brute-force evolution of the full
// distribution for a small chain where MTS is directly computable.
func TestBankQueueMTSAgainstDirectSimulation(t *testing.T) {
	c, _ := NewBankQueueChain(6, 3, 4, 1.0)
	want := c.MTS()
	// Direct: evolve the per-bank distribution, track system survival.
	v := make([]float64, c.States())
	scratch := make([]float64, c.States())
	v[0] = 1
	mass := 1.0
	var direct float64
	for tstep := 1; tstep < 10_000_000; tstep++ {
		mass -= c.Step(v, scratch)
		if math.Pow(mass, float64(c.B)) <= 0.5 {
			direct = float64(tstep)
			break
		}
	}
	if direct == 0 {
		t.Fatal("direct simulation never crossed 50%")
	}
	if math.Abs(want-direct) > direct*0.05 {
		t.Fatalf("solver MTS %.4g vs direct %.4g (>5%% apart)", want, direct)
	}
}

func TestBankQueueChainValidation(t *testing.T) {
	for _, tc := range []struct {
		b, q, l int
		r       float64
	}{
		{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0.5},
	} {
		if _, err := NewBankQueueChain(tc.b, tc.q, tc.l, tc.r); err == nil {
			t.Errorf("NewBankQueueChain(%+v) should fail", tc)
		}
	}
}

func TestMTSCapApplied(t *testing.T) {
	// An absurdly overprovisioned system must cap at 1e16, not overflow.
	if got := BankQueueMTS(512, 64, 20, 1.5); got > MTSCap {
		t.Fatalf("MTS %v exceeds cap", got)
	}
	if got := DelayBufferMTS(512, 120, 130); math.IsNaN(got) {
		t.Fatal("NaN MTS")
	}
}

// Property: stall probability decreases in B and increases in D.
func TestDelayBufferProbMonotonicity(t *testing.T) {
	f := func(bRaw, kRaw, dRaw uint8) bool {
		b := 2 << (bRaw % 6)       // 2..64
		k := int(kRaw%24) + 2      // 2..25
		d := int(dRaw%200) + k + 1 // window larger than K
		p1 := DelayBufferStallProb(b, k, d)
		p2 := DelayBufferStallProb(b*2, k, d)
		p3 := DelayBufferStallProb(b, k, d+10)
		return p2 <= p1+1e-15 && p3 >= p1-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBirthdayBound(t *testing.T) {
	// The paper's O(sqrt(B)) remark: with L large, the expected first
	// conflict of a queue-less banked memory tracks sqrt(pi/2*B).
	for _, b := range []int{16, 64, 256, 1024} {
		exact := NoQueueFirstConflict(b, 1<<20)
		approx := BirthdayApprox(b)
		if math.Abs(exact-approx) > approx*0.25 {
			t.Errorf("B=%d: exact %.1f vs sqrt approx %.1f", b, exact, approx)
		}
	}
	// Short busy periods recover: larger L means earlier conflicts.
	if NoQueueFirstConflict(64, 2) < NoQueueFirstConflict(64, 64) {
		t.Error("longer busy windows must shorten the first conflict")
	}
	// Degenerate inputs.
	if NoQueueFirstConflict(0, 5) != 0 || NoQueueFirstConflict(5, 0) != 0 {
		t.Error("degenerate inputs should return 0")
	}
	// B=1: the second access always conflicts.
	if got := NoQueueFirstConflict(1, 10); math.Abs(got-2) > 1e-9 {
		t.Errorf("B=1 first conflict = %v want 2", got)
	}
}

func TestWriteBufferChainValidation(t *testing.T) {
	for _, tc := range []struct {
		b, q, wb, l int
		r, f        float64
	}{
		{0, 1, 1, 1, 1, 0.5}, {1, 0, 1, 1, 1, 0.5}, {1, 1, 0, 1, 1, 0.5},
		{1, 1, 1, 0, 1, 0.5}, {1, 1, 1, 1, 0.5, 0.5}, {1, 1, 1, 1, 1, 1.5},
	} {
		if _, err := NewWriteBufferChain(tc.b, tc.q, tc.wb, tc.l, tc.r, tc.f); err == nil {
			t.Errorf("NewWriteBufferChain(%+v) should fail", tc)
		}
	}
}

// TestWriteBufferStallDoesNotDominate checks the paper's one-line claim
// quantitatively: with the write buffer at half the bank access queue
// size and a typical write fraction, the write buffer's MTS comfortably
// exceeds the bank access queue's own.
func TestWriteBufferStallDoesNotDominate(t *testing.T) {
	for _, cfg := range []struct {
		b, q int
		f    float64
	}{
		{16, 8, 0.25},
		{32, 8, 0.25},
		{16, 8, 0.35},
	} {
		wb := cfg.q / 2
		wbMTS := WriteBufferMTS(cfg.b, cfg.q, wb, 20, 1.3, cfg.f)
		bqMTS := BankQueueMTS(cfg.b, cfg.q, 20, 1.3)
		if wbMTS < bqMTS {
			t.Errorf("B=%d Q=%d f=%.2f: WB MTS %.3g below BAQ MTS %.3g — contradicts the paper's claim",
				cfg.b, cfg.q, cfg.f, wbMTS, bqMTS)
		}
	}
	// At a 50% write fraction (packet buffering's steady state) the
	// WB = Q/2 sizing is only proportional, and the model finds the two
	// stall modes comparable rather than WB-dominated — a nuance the
	// paper's one-liner glosses over. Pin it so the finding is recorded.
	wbMTS := WriteBufferMTS(16, 8, 4, 20, 1.3, 0.5)
	bqMTS := BankQueueMTS(16, 8, 20, 1.3)
	if wbMTS < bqMTS/2 || wbMTS > bqMTS*10 {
		t.Errorf("f=0.50: WB MTS %.3g vs BAQ %.3g drifted out of the 'comparable' band", wbMTS, bqMTS)
	}
}

// TestWriteBufferMTSShrinksWithWriteFraction: more writes, earlier
// write-buffer stalls.
func TestWriteBufferMTSShrinksWithWriteFraction(t *testing.T) {
	lo := WriteBufferMTS(8, 8, 4, 20, 1.3, 0.25)
	hi := WriteBufferMTS(8, 8, 4, 20, 1.3, 0.9)
	if hi >= lo {
		t.Fatalf("writeFrac 0.9 MTS %.3g should be below 0.25's %.3g", hi, lo)
	}
}

// TestWriteBufferMTSGrowsWithDepth.
func TestWriteBufferMTSGrowsWithDepth(t *testing.T) {
	shallow := WriteBufferMTS(8, 8, 2, 20, 1.3, 0.5)
	deep := WriteBufferMTS(8, 8, 6, 20, 1.3, 0.5)
	if deep <= shallow {
		t.Fatalf("deeper write buffer MTS %.3g should beat %.3g", deep, shallow)
	}
}

func TestWallclock(t *testing.T) {
	if got := Wallclock(1e9, 1.0); got != time.Second {
		t.Fatalf("1e9 cycles at 1GHz = %v want 1s", got)
	}
	if got := Wallclock(5e8, 0.5); got != time.Second {
		t.Fatalf("5e8 cycles at 0.5GHz = %v want 1s", got)
	}
	if got := Wallclock(1e9, 0); got != 0 {
		t.Fatalf("zero clock = %v", got)
	}
	if got := Wallclock(1e30, 1.0); got <= 0 {
		t.Fatalf("huge MTS must saturate positive, got %v", got)
	}
}

func TestDescribeMTS(t *testing.T) {
	cases := []struct {
		mts  float64
		want string
	}{
		{1e16, "capped"},
		{9e13, "day"},
		{4e12, "hour"},
		{2e9, "second"},
		{5.12e5, "at 1 GHz"},
	}
	for _, tc := range cases {
		got := DescribeMTS(tc.mts)
		if !strings.Contains(got, tc.want) {
			t.Errorf("DescribeMTS(%g) = %q, want mention of %q", tc.mts, got, tc.want)
		}
	}
}
