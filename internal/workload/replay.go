package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace recording and replay. VPNM "makes no assumption about the
// memory access patterns", so the natural interchange format for
// experiments is a raw per-cycle operation stream: capture a workload
// once (from a generator, a production trace converter, or a failing
// fuzz case) and replay it bit-exactly against any controller.
//
// The format is a little-endian binary stream: an 8-byte magic header,
// then one record per cycle: a 1-byte opcode (idle/read/write), an
// 8-byte address for reads and writes, and a 2-byte length plus payload
// for writes.

var traceMagic = [8]byte{'V', 'P', 'N', 'M', 'T', 'R', 'C', '1'}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("workload: malformed trace")

// Recorder tees a generator's ops into a writer while passing them
// through unchanged, so the recorded run and the live run are the same
// run.
type Recorder struct {
	inner Generator
	w     *bufio.Writer
	err   error
	n     uint64
}

// NewRecorder wraps inner, writing every produced op to w. Call Flush
// when done.
func NewRecorder(inner Generator, w io.Writer) (*Recorder, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	return &Recorder{inner: inner, w: bw}, nil
}

// Next implements Generator.
func (r *Recorder) Next() Op {
	op := r.inner.Next()
	if r.err == nil {
		r.err = writeOp(r.w, op)
		r.n++
	}
	return op
}

// Flush finishes the stream and reports any write error encountered.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Recorded reports the number of ops written.
func (r *Recorder) Recorded() uint64 { return r.n }

func writeOp(w *bufio.Writer, op Op) error {
	if err := w.WriteByte(byte(op.Kind)); err != nil {
		return err
	}
	if op.Kind == OpIdle {
		return nil
	}
	var addr [8]byte
	binary.LittleEndian.PutUint64(addr[:], op.Addr)
	if _, err := w.Write(addr[:]); err != nil {
		return err
	}
	if op.Kind == OpWrite {
		if len(op.Data) > 1<<16-1 {
			return fmt.Errorf("workload: write payload %d too large for trace format", len(op.Data))
		}
		var n [2]byte
		binary.LittleEndian.PutUint16(n[:], uint16(len(op.Data)))
		if _, err := w.Write(n[:]); err != nil {
			return err
		}
		if _, err := w.Write(op.Data); err != nil {
			return err
		}
	}
	return nil
}

// Replayer is a Generator that reads a recorded trace. When the trace
// is exhausted it produces OpIdle forever and Done reports true.
type Replayer struct {
	r    *bufio.Reader
	buf  []byte
	done bool
	err  error
	n    uint64
}

// NewReplayer validates the header and prepares to replay.
func NewReplayer(r io.Reader) (*Replayer, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	return &Replayer{r: br}, nil
}

// Done reports whether the trace has been fully consumed.
func (p *Replayer) Done() bool { return p.done }

// Err reports any stream corruption encountered (EOF is not an error).
func (p *Replayer) Err() error { return p.err }

// Replayed reports ops produced so far.
func (p *Replayer) Replayed() uint64 { return p.n }

// Next implements Generator.
func (p *Replayer) Next() Op {
	if p.done {
		return Op{Kind: OpIdle}
	}
	kind, err := p.r.ReadByte()
	if err != nil {
		p.finish(err)
		return Op{Kind: OpIdle}
	}
	op := Op{Kind: OpKind(kind)}
	switch op.Kind {
	case OpIdle:
	case OpRead, OpWrite:
		var addr [8]byte
		if _, err := io.ReadFull(p.r, addr[:]); err != nil {
			p.finish(err)
			return Op{Kind: OpIdle}
		}
		op.Addr = binary.LittleEndian.Uint64(addr[:])
		if op.Kind == OpWrite {
			var n [2]byte
			if _, err := io.ReadFull(p.r, n[:]); err != nil {
				p.finish(err)
				return Op{Kind: OpIdle}
			}
			ln := int(binary.LittleEndian.Uint16(n[:]))
			if cap(p.buf) < ln {
				p.buf = make([]byte, ln)
			}
			p.buf = p.buf[:ln]
			if _, err := io.ReadFull(p.r, p.buf); err != nil {
				p.finish(err)
				return Op{Kind: OpIdle}
			}
			op.Data = p.buf
		}
	default:
		p.finish(fmt.Errorf("%w: opcode %d", ErrBadTrace, kind))
		return Op{Kind: OpIdle}
	}
	p.n++
	return op
}

// finish marks the stream done; a clean EOF at a record boundary is the
// normal end of trace, anything else is recorded in Err.
func (p *Replayer) finish(err error) {
	p.done = true
	if err != nil && err != io.EOF {
		p.err = fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
}
