// Package classify implements two-dimensional packet classification —
// the first algorithm on the paper's future-work list ("including
// packet classification") — as hierarchical source/destination tries
// stored entirely in virtually pipelined memory.
//
// Rules are (source prefix, destination prefix, priority, action). The
// classifier is the textbook hierarchical-trie construction: a binary
// source trie whose prefix nodes each point at a binary destination
// trie holding the rules with that source prefix. A lookup walks the
// source trie, and for every matching source prefix walks the
// corresponding destination trie, taking the highest-priority rule
// found. That is O(W^2) dependent memory accesses per packet in the
// worst case — exactly the irregular, unpredictable pattern that makes
// classification hostile to bank-aware layouts and a natural fit for a
// memory that simply doesn't care.
package classify

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Rule is one classification rule. Higher Priority wins; Action 0 is
// reserved.
type Rule struct {
	SrcAddr  uint32
	SrcLen   int
	DstAddr  uint32
	DstLen   int
	Priority int
	Action   uint32
}

// Errors.
var (
	ErrNoMemory   = errors.New("classify: node arena exhausted")
	ErrBadRule    = errors.New("classify: malformed rule")
	ErrZeroAction = errors.New("classify: action 0 is reserved")
)

// node is a binary trie node: a value (rule index + 1 on destination
// tries, destination-trie root + 1 on the source trie) and two child
// pointers. Encoded in the first 12 bytes of one memory word.
type node struct {
	value uint32
	child [2]uint32
}

// Classifier owns the rule set, the trie arena (mirrored in VPNM
// memory), and the lookup machinery.
type Classifier struct {
	mem   sim.Memory
	base  uint64
	limit uint32

	nodes  []node
	synced []bool
	rules  []Rule

	// srcIndex deduplicates source prefixes: key -> destination trie
	// root node. The same root is stored (plus one) in the source trie
	// node's value, so the memory-resident engine needs no side table.
	srcIndex map[[2]uint32]uint32
}

// New builds an empty classifier whose nodes occupy word addresses
// [base, base+maxNodes) of mem. The memory's word size must be at
// least 12 bytes.
func New(mem sim.Memory, base uint64, maxNodes int) (*Classifier, error) {
	if maxNodes < 1 {
		return nil, fmt.Errorf("classify: maxNodes must be >= 1, got %d", maxNodes)
	}
	return &Classifier{
		mem:      mem,
		base:     base,
		limit:    uint32(maxNodes),
		nodes:    []node{{}}, // node 0: source trie root
		synced:   []bool{false},
		srcIndex: make(map[[2]uint32]uint32),
	}, nil
}

// Rules reports the number of installed rules.
func (c *Classifier) Rules() int { return len(c.rules) }

// NodeCount reports allocated trie nodes.
func (c *Classifier) NodeCount() int { return len(c.nodes) }

func (c *Classifier) alloc() (uint32, error) {
	if uint32(len(c.nodes)) >= c.limit {
		return 0, ErrNoMemory
	}
	c.nodes = append(c.nodes, node{})
	c.synced = append(c.synced, false)
	return uint32(len(c.nodes) - 1), nil
}

// walkTo descends from root along the top `length` bits of addr,
// allocating nodes as needed, and returns the final node index.
func (c *Classifier) walkTo(root uint32, addr uint32, length int) (uint32, error) {
	cur := root
	for i := 0; i < length; i++ {
		bit := (addr >> (31 - uint(i))) & 1
		next := c.nodes[cur].child[bit]
		if next == 0 {
			n, err := c.alloc()
			if err != nil {
				return 0, err
			}
			c.nodes[cur].child[bit] = n
			c.synced[cur] = false
			next = n
		}
		cur = next
	}
	return cur, nil
}

// AddRule installs a rule. Rules sharing a source prefix share one
// destination trie; a (src, dst) collision keeps the higher priority.
func (c *Classifier) AddRule(r Rule) error {
	if r.SrcLen < 0 || r.SrcLen > 32 || r.DstLen < 0 || r.DstLen > 32 {
		return fmt.Errorf("%w: prefix lengths %d/%d", ErrBadRule, r.SrcLen, r.DstLen)
	}
	if r.Action == 0 {
		return ErrZeroAction
	}
	r.SrcAddr = maskPrefix(r.SrcAddr, r.SrcLen)
	r.DstAddr = maskPrefix(r.DstAddr, r.DstLen)

	key := [2]uint32{r.SrcAddr, uint32(r.SrcLen)}
	dstRoot, ok := c.srcIndex[key]
	if !ok {
		// New source prefix: place it in the source trie and allocate a
		// destination trie root, pointed to by the source node's value.
		srcNode, err := c.walkTo(0, r.SrcAddr, r.SrcLen)
		if err != nil {
			return err
		}
		dstRoot, err = c.alloc()
		if err != nil {
			return err
		}
		c.srcIndex[key] = dstRoot
		c.nodes[srcNode].value = dstRoot + 1
		c.synced[srcNode] = false
	}
	dstNode, err := c.walkTo(dstRoot, r.DstAddr, r.DstLen)
	if err != nil {
		return err
	}
	if v := c.nodes[dstNode].value; v != 0 {
		// Same (src, dst) pair: priority decides.
		if c.rules[v-1].Priority >= r.Priority {
			return nil
		}
	}
	c.rules = append(c.rules, r)
	c.nodes[dstNode].value = uint32(len(c.rules)) // rule index + 1
	c.synced[dstNode] = false
	return nil
}

func maskPrefix(addr uint32, length int) uint32 {
	if length == 0 {
		return 0
	}
	return addr & (^uint32(0) << (32 - uint(length)))
}

// encode packs a node into a memory word.
func encode(n *node, word int) []byte {
	buf := make([]byte, word)
	binary.LittleEndian.PutUint32(buf[0:], n.value)
	binary.LittleEndian.PutUint32(buf[4:], n.child[0])
	binary.LittleEndian.PutUint32(buf[8:], n.child[1])
	return buf
}

func decode(word []byte) node {
	return node{
		value: binary.LittleEndian.Uint32(word[0:]),
		child: [2]uint32{
			binary.LittleEndian.Uint32(word[4:]),
			binary.LittleEndian.Uint32(word[8:]),
		},
	}
}

// Sync writes dirty nodes into memory (one write per cycle) and returns
// the word count written.
func (c *Classifier) Sync(wordBytes int) (int, error) {
	words := 0
	for i := range c.nodes {
		if c.synced[i] {
			continue
		}
		data := encode(&c.nodes[i], wordBytes)
		for {
			err := c.mem.Write(c.base+uint64(i), data)
			if err == nil {
				break
			}
			if !core.IsStall(err) {
				return words, err
			}
			c.mem.Tick()
		}
		words++
		c.synced[i] = true
		c.mem.Tick()
	}
	return words, nil
}

// ClassifyShadow resolves a packet against the control-plane mirror —
// the reference the memory-resident engine is verified against.
func (c *Classifier) ClassifyShadow(src, dst uint32) (Rule, bool) {
	best := -1
	var bestRule Rule
	cur := uint32(0)
	for level := 0; ; level++ {
		n := &c.nodes[cur]
		if n.value != 0 {
			c.scanDstShadow(n.value-1, dst, &best, &bestRule)
		}
		if level >= 32 {
			break
		}
		bit := (src >> (31 - uint(level))) & 1
		if n.child[bit] == 0 {
			break
		}
		cur = n.child[bit]
	}
	return bestRule, best >= 0
}

func (c *Classifier) scanDstShadow(root, dst uint32, best *int, bestRule *Rule) {
	cur := root
	for level := 0; ; level++ {
		n := &c.nodes[cur]
		if n.value != 0 {
			r := c.rules[n.value-1]
			if r.Priority > *best {
				*best = r.Priority
				*bestRule = r
			}
		}
		if level >= 32 {
			return
		}
		bit := (dst >> (31 - uint(level))) & 1
		if n.child[bit] == 0 {
			return
		}
		cur = n.child[bit]
	}
}
