package pktbuf

import (
	"repro/internal/analysis"
	"repro/internal/hw"
)

// Scheme is one row of Table 3: a packet buffering architecture and its
// published (or, for ours, computed) characteristics at 0.13 um.
type Scheme struct {
	Name string
	// Citation identifies the source of published rows.
	Citation string
	// MaxLineRateGbps is the highest line rate the scheme supports.
	MaxLineRateGbps float64
	// SRAMBytes is the on-chip SRAM requirement; <0 means not reported.
	SRAMBytes int
	// AreaMM2 is the silicon area; <0 means not reported.
	AreaMM2 float64
	// TotalDelayNS is the added buffering delay; <0 means not reported.
	TotalDelayNS float64
	// Interfaces is the number of supported queues/interfaces.
	Interfaces int
}

// PublishedSchemes returns the comparison rows of Table 3 exactly as
// the paper reports them (they are literature constants there too).
func PublishedSchemes() []Scheme {
	return []Scheme{
		{
			Name:            "Aristides et al. (out-of-order DRAM)",
			Citation:        "[22] Nikologiannis & Katevenis, ICC 2001",
			MaxLineRateGbps: 10,
			SRAMBytes:       520 << 10,
			AreaMM2:         27.4,
			TotalDelayNS:    -1,
			Interfaces:      64000,
		},
		{
			Name:            "RADS (SRAM/DRAM head-tail caches)",
			Citation:        "[17] Iyer, Kompella & McKeown, Stanford TR02-HPNG-031001",
			MaxLineRateGbps: 40,
			SRAMBytes:       64 << 10,
			AreaMM2:         10,
			TotalDelayNS:    53,
			Interfaces:      130,
		},
		{
			Name:            "CFDS (conflict-free DRAM subsystem)",
			Citation:        "[12] Garcia et al., MICRO 36",
			MaxLineRateGbps: 160,
			SRAMBytes:       -1,
			AreaMM2:         60,
			TotalDelayNS:    10000,
			Interfaces:      850,
		},
	}
}

// OurParams is the VPNM design point behind the paper's Table 3 row:
// the Q=48 geometry whose delay window Q*L is the published 960 ns and
// whose controller area (34.1 mm^2) plus 320 KB of pointer SRAM
// (~7.8 mm^2) gives the published 41.9 mm^2.
var OurParams = hw.Params{B: 32, Q: 48, K: 96, R: 1.3}

// OurScheme computes the VPNM row of Table 3 from the hardware model
// rather than quoting it, so any change to the model shows up here.
func OurScheme() Scheme {
	queues := 4096
	sram := PointerSRAMBytes(queues)
	return Scheme{
		Name:            "VPNM (this work)",
		Citation:        "computed from internal/hw + internal/analysis",
		MaxLineRateGbps: 160, // OC-3072, the requirement the row targets
		SRAMBytes:       sram,
		AreaMM2:         OurParams.AreaMM2() + hw.SRAMAreaMM2(sram),
		TotalDelayNS:    float64(analysis.DelayWindow(OurParams.Q, hw.DefaultL)), // at a 1 GHz clock
		Interfaces:      queues,
	}
}

// Table3 returns all rows, ours last, matching the paper's layout.
func Table3() []Scheme {
	return append(PublishedSchemes(), OurScheme())
}
