package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestMemProbeObserveTick(t *testing.T) {
	reg := NewRegistry()
	p := NewMemProbe(reg, "0", 4, 8, 32)
	est := NewMTSEstimator(8)
	p.AttachEstimator(reg, est, "0")
	if p.Estimator() != est {
		t.Fatal("Estimator() did not return the attached estimator")
	}

	s := &TickSample{
		Cycle:          99,
		QueueDepth:     5,
		MaxBankQueue:   3,
		DelayRowsInUse: 7,
		WriteBufInUse:  2,
		PerBankQueue:   []int32{3, 2, 0, 0},
		PerBankRows:    []int32{4, 2, 1, 0},
		Reads:          100,
		Writes:         20,
		MergedReads:    11,
		Replays:        90,
	}
	s.Stalls[CauseBankQueue] = 3
	s.Stalls[CauseDelayBuffer] = 1
	p.ObserveTick(s)

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	parsed, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	for key, want := range map[string]float64{
		`vpnm_cycle{channel="0"}`:                             99,
		`vpnm_queue_depth{channel="0"}`:                       5,
		`vpnm_delay_rows_in_use{channel="0"}`:                 7,
		`vpnm_write_buffer_in_use{channel="0"}`:               2,
		`vpnm_reads_total{channel="0"}`:                       100,
		`vpnm_writes_total{channel="0"}`:                      20,
		`vpnm_merged_reads_total{channel="0"}`:                11,
		`vpnm_replays_total{channel="0"}`:                     90,
		`vpnm_stalls_total{channel="0",cause="bank-queue"}`:   3,
		`vpnm_stalls_total{channel="0",cause="delay-buffer"}`: 1,
		`vpnm_stalls_total{channel="0",cause="write-buffer"}`: 0,
		`vpnm_stalls_total{channel="0",cause="counter"}`:      0,
		`vpnm_bank_queue_depth{channel="0",bank="0"}`:         3,
		`vpnm_bank_queue_depth{channel="0",bank="1"}`:         2,
		`vpnm_bank_delay_rows{channel="0",bank="0"}`:          4,
		`vpnm_occupancy_rows_count{channel="0"}`:              1,
		`vpnm_max_bank_queue_depth_count{channel="0"}`:        1,
	} {
		got, ok := parsed[key]
		if !ok {
			t.Errorf("exposition missing series %s", key)
			continue
		}
		if got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	if r := est.Report(); r.Ticks != 1 || r.Requests != 120 || r.Stalls != 4 {
		t.Errorf("estimator fed ticks/reqs/stalls = %d/%d/%d, want 1/120/4", r.Ticks, r.Requests, r.Stalls)
	}
	// The MTS gauge function renders without panicking.
	var buf2 bytes.Buffer
	if _, err := reg.WriteTo(&buf2); err != nil {
		t.Fatalf("second WriteTo: %v", err)
	}
	if !strings.Contains(buf2.String(), `vpnm_mts_estimate_cycles{channel="0",method="excursion"}`) {
		t.Error("exposition missing the MTS excursion gauge")
	}
}

func TestMemProbeObserveTickAllocationFree(t *testing.T) {
	reg := NewRegistry()
	p := NewMemProbe(reg, "0", 8, 16, 64)
	est := NewMTSEstimator(16)
	est.Model(8, 20, 1.3)
	p.AttachEstimator(reg, est, "0")
	s := &TickSample{
		PerBankQueue: make([]int32, 8),
		PerBankRows:  make([]int32, 8),
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Cycle++
		s.Reads += 2
		s.Replays++
		p.ObserveTick(s)
	})
	if allocs != 0 {
		t.Fatalf("ObserveTick allocates %v allocs/op, want 0", allocs)
	}
}

func TestStallCauseStrings(t *testing.T) {
	want := map[StallCause]string{
		CauseDelayBuffer: "delay-buffer",
		CauseBankQueue:   "bank-queue",
		CauseWriteBuffer: "write-buffer",
		CauseCounter:     "counter",
		NumStallCauses:   "other",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}
