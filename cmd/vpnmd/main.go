// Command vpnmd serves a virtually pipelined network memory over TCP:
// the daemon the paper's line cards would talk to. It stripes the
// configured geometry across C independent VPNM channels
// (internal/multichannel), multiplexes every client connection onto
// them through the vpnmd engine (internal/server), and speaks the
// length-prefixed binary protocol of internal/wire.
//
//	vpnmd -addr :7450 -channels 4 -banks 32 -statsz :7451
//
// Clients (cmd/vpnmload, or anything built on internal/client) issue
// pipelined reads and writes; every read completes exactly D interface
// cycles after it issued, no matter the access pattern. The -statsz
// address serves the observability suite: /statsz (engine ledger as
// JSON), /metricsz (engine plus per-channel controller metrics as
// Prometheus text, including the live MTS estimate), /tracez
// (start/stop/download a cycle-stamped Chrome trace window), and
// /debug/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/coded"
	"repro/internal/core"
	"repro/internal/multichannel"
	"repro/internal/qos"
	"repro/internal/recovery"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// limitsFlag parses repeated -qos tenant=rate[:burst] flags into a
// per-tenant limit map (rate in requests per interface cycle, burst in
// requests).
type limitsFlag struct {
	m map[string]qos.Limit
}

func (f *limitsFlag) String() string {
	if f == nil || len(f.m) == 0 {
		return ""
	}
	parts := make([]string, 0, len(f.m))
	for name, l := range f.m {
		parts = append(parts, fmt.Sprintf("%s=%g:%g", name, l.Rate, l.Burst))
	}
	return strings.Join(parts, ",")
}

func (f *limitsFlag) Set(v string) error {
	name, spec, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want tenant=rate[:burst], got %q", v)
	}
	l, err := parseLimit(spec)
	if err != nil {
		return err
	}
	if f.m == nil {
		f.m = make(map[string]qos.Limit)
	}
	f.m[name] = l
	return nil
}

// parseLimit parses "rate" or "rate:burst" into a qos.Limit.
func parseLimit(spec string) (qos.Limit, error) {
	rs, bs, hasBurst := strings.Cut(spec, ":")
	var l qos.Limit
	var err error
	if l.Rate, err = strconv.ParseFloat(rs, 64); err != nil {
		return l, fmt.Errorf("bad rate %q: %v", rs, err)
	}
	if hasBurst {
		if l.Burst, err = strconv.ParseFloat(bs, 64); err != nil {
			return l, fmt.Errorf("bad burst %q: %v", bs, err)
		}
	}
	return l, l.Validate()
}

func main() {
	var (
		addr     = flag.String("addr", ":7450", "TCP listen address for the memory service")
		statsz   = flag.String("statsz", "", "HTTP listen address for /statsz, /metricsz, /tracez and /debug/pprof (empty disables)")
		traceCap = flag.Int("trace-events", 1<<16, "event trace ring capacity (events kept for /tracez downloads)")
		channels = flag.Int("channels", 4, "channel count (power of two); up to this many requests are accepted per cycle")
		banks    = flag.Int("banks", core.DefaultBanks, "banks per channel B")
		latency  = flag.Int("latency", core.DefaultAccessLatency, "bank occupancy L in memory cycles")
		queue    = flag.Int("queue", core.DefaultQueueDepth, "bank access queue depth Q")
		rows     = flag.Int("rows", core.DefaultDelayRows, "delay storage buffer rows K")
		word     = flag.Int("word", 8, "word size W in bytes")
		codedStr = flag.String("coded", "", "XOR-parity coded bank groups per channel, e.g. group=4,k=2 (empty/off = disabled)")
		ratio    = flag.Float64("ratio", 1.3, "bus scaling ratio R")
		seed     = flag.Uint64("seed", 1, "universal hash seed (keep secret in anger)")
		window   = flag.Int("window", server.DefaultWindow, "per-connection request window before TCP backpressure")
		policy   = flag.String("policy", "backpressure", "stall policy: retry | drop | backpressure (drop surfaces stalls to clients)")
		attempts = flag.Int("attempts", 0, "max hold-and-retry attempts per stalled request (0: default)")
		tick     = flag.Duration("tick", 0, "wall-clock tick interval (0: free-running clock)")
		ooo      = flag.Bool("ooo", false, "out-of-order cross-channel issue: park blocked heads per channel and issue the oldest issuable request on every channel each cycle")
		oooDepth = flag.Int("ooo-depth", 0, "per-channel pending ring depth for -ooo (0: default)")
		quiet    = flag.Bool("q", false, "suppress connection lifecycle logging")
		poolchk  = flag.Bool("poolcheck", false, "arm the frame-buffer pool's leak/double-put detector; hygiene is reported after drain")

		qosDefault = flag.String("qos-default", "", "default tenant token bucket as rate[:burst] in req/cycle (empty: unlimited)")
		wtimeout   = flag.Duration("write-timeout", 10*time.Second, "per-frame write deadline to a client; a peer that stops reading is detached (0 disables)")
		drainT     = flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGINT/SIGTERM before forced shutdown")

		shardName    = flag.String("shard-name", "", "this daemon's name in a sharded fleet; arms the /statsz shard block (requires -shard-members)")
		shardMembers = flag.String("shard-members", "", "comma-separated fleet membership (must include -shard-name and match the router's)")
		shardVNodes  = flag.Int("shard-vnodes", 0, "ring virtual nodes per member (0: library default; must match the router's)")
		shardSeed    = flag.Uint64("shard-seed", 0, "ring permutation seed (0: library default; must match the router's)")
	)
	var qosLimits limitsFlag
	flag.Var(&qosLimits, "qos", "per-tenant token bucket as tenant=rate[:burst], repeatable")
	flag.Parse()

	pol, err := recovery.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	num, den := ratioFrac(*ratio)
	geo, err := coded.ParseFlag(*codedStr)
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{
		Banks:         *banks,
		AccessLatency: *latency,
		QueueDepth:    *queue,
		DelayRows:     *rows,
		WordBytes:     *word,
		RatioNum:      num,
		RatioDen:      den,
		Coded:         geo,
	}
	// Telemetry: one probe (and MTS estimator) per channel publishing
	// into a shared registry, and one event trace ring shared by every
	// channel's tracer. Both are armed only through the HTTP endpoints;
	// until then the probes cost a few stores per cycle and the disarmed
	// trace a single atomic load per event.
	reg := telemetry.NewRegistry()
	trace := telemetry.NewEventTrace(*traceCap)
	trace.SetRatio(num, den)
	mem, err := multichannel.New(cfg, *channels, *seed,
		multichannel.WithProbes(func(ch int) telemetry.Probe {
			label := strconv.Itoa(ch)
			p := telemetry.NewMemProbe(reg, label, *banks, *queue, *banks**rows)
			if geo.Enabled() {
				p.EnableCoded(reg, label, geo.ReadPorts())
			}
			est := telemetry.NewMTSEstimator(*queue)
			est.Model(*banks, *latency, float64(num)/float64(den))
			p.AttachEstimator(reg, est, label)
			return p
		}),
		multichannel.WithTracers(func(ch int) core.Tracer { return trace.ForChannel(ch) }),
	)
	if err != nil {
		fatal(err)
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	// QoS: one regulator shared by every session, publishing per-tenant
	// vpnm_tenant_* series into the same registry /metricsz serves. It
	// is built whenever any limit is configured; without limits every
	// tenant is unlimited and the engine skips regulation entirely.
	var regulator *qos.Regulator
	if *qosDefault != "" || len(qosLimits.m) > 0 {
		qcfg := qos.Config{Limits: qosLimits.m, Registry: reg}
		if *qosDefault != "" {
			l, err := parseLimit(*qosDefault)
			if err != nil {
				fatal(fmt.Errorf("-qos-default: %w", err))
			}
			qcfg.Default = l
		}
		if regulator, err = qos.NewRegulator(qcfg); err != nil {
			fatal(err)
		}
	}
	eng, err := server.New(server.Config{
		Mem:          mem,
		Window:       *window,
		Policy:       pol,
		MaxAttempts:  *attempts,
		QoS:          regulator,
		OOO:          *ooo,
		OOODepth:     *oooDepth,
		Metrics:      reg,
		WriteTimeout: *wtimeout,
		TickInterval: *tick,
		Logf:         logf,
		PoolCheck:    *poolchk,
	})
	if err != nil {
		fatal(err)
	}

	// Shard identity: a fleet member daemon computes its ring view once
	// (membership is static from flags; cmd/vpnmfleet installs a live
	// provider instead) and serves it as the /statsz "shard" block.
	if *shardName != "" {
		members := strings.Split(*shardMembers, ",")
		ring, err := shard.NewRing(shard.RingConfig{VNodes: *shardVNodes, Seed: *shardSeed}, members)
		if err != nil {
			fatal(fmt.Errorf("-shard-members: %w", err))
		}
		found := false
		for _, m := range ring.Members() {
			found = found || m == *shardName
		}
		if !found {
			fatal(fmt.Errorf("-shard-name %q is not in -shard-members %q", *shardName, *shardMembers))
		}
		state := shard.Node(ring, *shardName)
		eng.SetShardState(func() any { return state })
	} else if *shardMembers != "" {
		fatal(fmt.Errorf("-shard-members requires -shard-name"))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	codedNote := ""
	if geo.Enabled() {
		codedNote = fmt.Sprintf(", coded %s (%d read ports/cycle)", geo, mem.Ports())
	}
	fmt.Printf("vpnmd: serving %d channels x %d banks, D=%d cycles, word=%dB, policy=%s%s on %s\n",
		*channels, *banks, mem.Delay(), *word, pol, codedNote, ln.Addr())

	if *statsz != "" {
		mux := http.NewServeMux()
		mux.Handle("/healthz", eng.HealthzHandler())
		mux.Handle("/statsz", eng.StatszHandler())
		mux.Handle("/metricsz", eng.MetricsHandler(reg))
		mux.Handle("/tracez", telemetry.TraceHandler(trace, eng.Cycle))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Addr: *statsz, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "vpnmd: statsz:", err)
			}
		}()
		fmt.Printf("vpnmd: /statsz /metricsz /tracez /debug/pprof on %s\n", *statsz)
	}

	// First signal: graceful drain — stop accepting, refuse new work
	// with CodeDraining, run everything admitted to completion, report
	// the final ledger. Second signal (or an expired -drain budget):
	// forced shutdown.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-sig
		fmt.Printf("vpnmd: draining (budget %v; signal again to force shutdown)\n", *drainT)
		go func() {
			<-sig
			fmt.Println("vpnmd: forced shutdown")
			eng.Close()
		}()
		dctx, dcancel := context.WithTimeout(context.Background(), *drainT)
		snap, err := eng.Drain(dctx)
		dcancel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpnmd: drain:", err)
		} else {
			fmt.Printf("vpnmd: drained clean: %d completions, 0 outstanding, %d refused during drain\n",
				snap.Completions, snap.DrainRefused)
		}
		if *poolchk {
			if err := eng.PoolClean(); err != nil {
				fmt.Fprintln(os.Stderr, "vpnmd: pool:", err)
			} else {
				ps := eng.PoolStats()
				fmt.Printf("vpnmd: pool clean: %d gets, %d misses, 0 live\n", ps.Gets, ps.Misses)
			}
		}
		eng.Close()
	}()

	if err := eng.Serve(ln); err != nil {
		fatal(err)
	}
	<-shutdownDone // Serve returns at drain start; the ledger below is final
	s := eng.Snapshot()
	fmt.Printf("vpnmd: served %d reads, %d writes, %d completions (%d throttled) over %d cycles\n",
		s.Reads, s.Writes, s.Completions, s.Throttled, s.Cycle)
}

// ratioFrac turns a decimal R into a small fraction (R >= 1, two
// decimal places are plenty for the paper's 1.0-1.5 range).
func ratioFrac(r float64) (num, den int) {
	den = 100
	num = int(r*float64(den) + 0.5)
	for num%10 == 0 && den%10 == 0 {
		num /= 10
		den /= 10
	}
	return num, den
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpnmd:", err)
	os.Exit(1)
}
