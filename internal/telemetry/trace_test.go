package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestEventTraceRingWrap(t *testing.T) {
	tr := NewEventTrace(4)
	tr.Start(0, 0)
	for i := 0; i < 10; i++ {
		tr.record(Event{Kind: EvRead, Cycle: uint64(i), Tag: uint64(i)})
	}
	if got := tr.Recorded(); got != 10 {
		t.Fatalf("Recorded = %d, want 10", got)
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot length = %d, want ring capacity 4", len(snap))
	}
	// Oldest-first: the surviving events are cycles 6..9.
	for i, ev := range snap {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Errorf("snapshot[%d].Cycle = %d, want %d", i, ev.Cycle, want)
		}
	}
}

func TestEventTracePartialRing(t *testing.T) {
	tr := NewEventTrace(8)
	tr.Start(0, 0)
	tr.record(Event{Kind: EvRead, Cycle: 1})
	tr.record(Event{Kind: EvDeliver, Cycle: 2})
	snap := tr.Snapshot()
	if len(snap) != 2 || snap[0].Cycle != 1 || snap[1].Cycle != 2 {
		t.Fatalf("partial snapshot = %+v, want cycles [1 2]", snap)
	}
}

func TestEventTraceDisarmed(t *testing.T) {
	tr := NewEventTrace(4)
	tr.record(Event{Kind: EvRead, Cycle: 1})
	if tr.Recorded() != 0 {
		t.Fatal("disarmed trace recorded an event")
	}
	tr.Start(0, 0)
	tr.record(Event{Kind: EvRead, Cycle: 1})
	tr.Stop()
	tr.record(Event{Kind: EvRead, Cycle: 2})
	if tr.Recorded() != 1 {
		t.Fatalf("Recorded = %d after Stop, want 1", tr.Recorded())
	}
}

func TestEventTraceWindowAutoStop(t *testing.T) {
	tr := NewEventTrace(64)
	tr.Start(100, 50)
	tr.record(Event{Kind: EvRead, Cycle: 120})
	tr.record(Event{Kind: EvRead, Cycle: 150}) // exactly at edge: in window
	if !tr.Active() {
		t.Fatal("trace stopped inside its window")
	}
	// Memory-domain events never trigger the window (different clock).
	tr.record(Event{Kind: EvIssueRead, Cycle: 100000})
	if !tr.Active() {
		t.Fatal("memory-domain event tripped the interface-cycle window")
	}
	tr.record(Event{Kind: EvRead, Cycle: 151}) // past the window: auto-stop
	if tr.Active() {
		t.Fatal("trace still active past its window")
	}
	if got := tr.Recorded(); got != 3 {
		t.Fatalf("Recorded = %d, want 3 (the out-of-window event is dropped)", got)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tr := NewEventTrace(64)
	tr.SetRatio(13, 10)
	tr.Start(0, 0)
	ct := tr.ForChannel(2)
	ct.OnRequest(5, 3, false, false, 0xabc, 7)
	ct.OnRequest(6, 1, true, false, 0xdef, 0)
	ct.OnRequest(7, 3, false, true, 0xabc, 8)
	ct.OnStall(8, 0, 0x123, errors.New("delay storage buffer full"))
	ct.OnIssue(13, 3, false, 0xabc)
	ct.OnDataReady(33, 3, 0xabc)
	ct.OnDeliver(1005, 3, 0xabc, 7)
	tr.Stop()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Ph    string         `json:"ph"`
			ID    *uint64        `json:"id"`
			TS    uint64         `json:"ts"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
			Scope string         `json:"s"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("traceEvents = %d, want 7", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev.Name+"/"+ev.Ph]++
		if ev.PID != 2 {
			t.Errorf("event %s pid = %d, want channel 2", ev.Name, ev.PID)
		}
	}
	for _, want := range []string{"read/b", "read/e", "write/i", "merged-read/b", "stall/i", "issue-read/i", "data-ready/i"} {
		if byName[want] != 1 {
			t.Errorf("want exactly one %q event, got %d (all: %v)", want, byName[want], byName)
		}
	}
	// Memory-domain timestamps are rescaled into interface cycles by 1/R.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "issue-read" && ev.TS != 13*10/13 {
			t.Errorf("issue-read ts = %d, want %d (memory cycle 13 / R)", ev.TS, 13*10/13)
		}
		if ev.Name == "stall" {
			if cause, _ := ev.Args["cause"].(string); !strings.Contains(cause, "delay storage buffer") {
				t.Errorf("stall cause = %q, want the sentinel error text", cause)
			}
		}
	}
}

// TestEventTraceConcurrentRecord drives recorders from several channel
// goroutines while snapshots and stop/start churn — run under -race
// this pins the claimed concurrency safety.
func TestEventTraceConcurrentRecord(t *testing.T) {
	tr := NewEventTrace(256)
	tr.Start(0, 0)
	const channels, events = 4, 2000
	var wg sync.WaitGroup
	for ch := 0; ch < channels; ch++ {
		wg.Add(1)
		go func(ch int) {
			defer wg.Done()
			ct := tr.ForChannel(ch)
			for i := 0; i < events; i++ {
				ct.OnRequest(uint64(i), ch, false, false, uint64(i), uint64(i))
				ct.OnDeliver(uint64(i+1000), ch, uint64(i), uint64(i))
			}
		}(ch)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		tr.Snapshot()
		select {
		case <-done:
			if got := tr.Recorded(); got != channels*events*2 {
				t.Fatalf("Recorded = %d, want %d", got, channels*events*2)
			}
			return
		default:
		}
	}
}

func TestTraceRecordAllocationFree(t *testing.T) {
	tr := NewEventTrace(1024)
	ct := tr.ForChannel(0)
	stall := errors.New("bank queue full")
	// Disarmed: the fast path is one atomic load.
	allocs := testing.AllocsPerRun(1000, func() {
		ct.OnRequest(1, 0, false, false, 2, 3)
	})
	if allocs != 0 {
		t.Fatalf("disarmed record allocates %v allocs/op, want 0", allocs)
	}
	tr.Start(0, 0)
	allocs = testing.AllocsPerRun(1000, func() {
		ct.OnRequest(1, 0, false, false, 2, 3)
		ct.OnStall(1, 0, 2, stall)
		ct.OnIssue(2, 0, false, 2)
		ct.OnDeliver(3, 0, 2, 3)
	})
	if allocs != 0 {
		t.Fatalf("armed record allocates %v allocs/op, want 0", allocs)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewEventTrace(16)
	tr.SetRatio(13, 10)
	cycle := uint64(500)
	h := TraceHandler(tr, func() uint64 { return cycle })

	get := func(target string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", target, nil))
		return w
	}

	if w := get("/tracez"); w.Code != 200 || !strings.Contains(w.Body.String(), "stopped") {
		t.Fatalf("status: code %d body %q", w.Code, w.Body.String())
	}
	if w := get("/tracez?action=start&cycles=100"); w.Code != 200 {
		t.Fatalf("start: code %d", w.Code)
	}
	if !tr.Active() {
		t.Fatal("trace not armed after start")
	}
	tr.ForChannel(0).OnDeliver(501, 1, 2, 3)
	if w := get("/tracez?action=stop"); w.Code != 200 {
		t.Fatalf("stop: code %d", w.Code)
	}
	w := get("/tracez?action=download")
	if w.Code != 200 {
		t.Fatalf("download: code %d", w.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("downloaded trace is not JSON: %v", err)
	}
	if w := get("/tracez?action=start&cycles=nope"); w.Code != 400 {
		t.Fatalf("bad cycles: code %d, want 400", w.Code)
	}
	if w := get("/tracez?action=bogus"); w.Code != 400 {
		t.Fatalf("bogus action: code %d, want 400", w.Code)
	}
}
