// Package figures regenerates every table and figure of the paper's
// evaluation (Section 5) from the models and simulators in this
// repository. The cmd/vpnmfig binary prints these series; the top-level
// benchmarks time their regeneration; the tests pin their shapes to the
// paper's claims.
package figures

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/analysis"
	"repro/internal/hw"
	"repro/internal/parallel"
	"repro/internal/pktbuf"
	"repro/internal/reassembly"
)

// Series is one labelled curve: y[i] corresponds to X[i] of the figure.
type Series struct {
	Label string
	Y     []float64
}

// Fig4 computes Figure 4: MTS versus the number of delay storage
// buffer entries K, for the paper's (B, Q) pairings at R = 1.3. The
// observation window is the drain time Q*L of a worst-case backlog.
// Values are capped at 1e16 as in the paper. The five curves are
// independent closed-form evaluations, so they fan out across the
// worker pool; series order is the pairing order at any worker count.
func Fig4() (ks []int, series []Series) {
	for k := 0; k <= 128; k += 4 {
		if k == 0 {
			continue
		}
		ks = append(ks, k)
	}
	pairs := []struct{ b, q int }{{4, 12}, {8, 12}, {16, 12}, {32, 8}, {64, 8}}
	series, err := parallel.Sweep(context.Background(), len(pairs), parallel.Options{},
		func(_ context.Context, i int) (Series, error) {
			p := pairs[i]
			s := Series{Label: fmt.Sprintf("B=%d,Q=%d", p.b, p.q)}
			d := analysis.DelayWindow(p.q, hw.DefaultL)
			for _, k := range ks {
				mts := analysis.DelayBufferMTS(p.b, k, d)
				if mts > analysis.MTSCap {
					mts = analysis.MTSCap
				}
				s.Y = append(s.Y, mts)
			}
			return s, nil
		})
	if err != nil {
		panic(err) // tasks are infallible
	}
	return ks, series
}

// Fig5 renders the bank access queue Markov model of Figure 5 for the
// paper's illustration parameters L = 3, Q = 2 as its transition
// matrix (fail state last).
func Fig5(b int) (string, error) {
	c, err := analysis.NewBankQueueChain(b, 2, 3, 1.0)
	if err != nil {
		return "", err
	}
	m := c.Matrix()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Bank access queue Markov model, B=%d, L=3, Q=2 (states = backlog work, 'fail' absorbing)\n", b)
	header := []string{"    "}
	for i := 0; i < len(m)-1; i++ {
		header = append(header, fmt.Sprintf("%6d", i))
	}
	header = append(header, "  fail")
	sb.WriteString(strings.Join(header, " ") + "\n")
	for i, row := range m {
		name := fmt.Sprintf("%4d", i)
		if i == len(m)-1 {
			name = "fail"
		}
		cells := []string{name}
		for _, v := range row {
			if v == 0 {
				cells = append(cells, "     .")
			} else {
				cells = append(cells, fmt.Sprintf("%6.3f", v))
			}
		}
		sb.WriteString(strings.Join(cells, " ") + "\n")
	}
	return sb.String(), nil
}

// Fig6 computes Figure 6: MTS versus the bank access queue size Q for
// B in {4, 8, 16, 32, 64} at R = 1.3. The 80 Markov solves behind the
// figure are independent chains, evaluated across the worker pool by
// analysis.MTSSurface.
func Fig6() (qs []int, series []Series) {
	for q := 4; q <= 64; q += 4 {
		qs = append(qs, q)
	}
	bs := []int{4, 8, 16, 32, 64}
	surface := analysis.MTSSurface(bs, qs, hw.DefaultL, 1.3, true, 0)
	for bi, b := range bs {
		s := Series{Label: fmt.Sprintf("B=%d", b)}
		for qi := range qs {
			mts := surface[bi][qi]
			if mts > analysis.MTSCap {
				mts = analysis.MTSCap
			}
			s.Y = append(s.Y, mts)
		}
		series = append(series, s)
	}
	return qs, series
}

// Fig7 computes Figure 7: the area/MTS Pareto frontier of the design
// space sweep for each bus scaling ratio. The per-ratio sweeps are
// independent design-space explorations, so they fan out across the
// worker pool (each sweep also parallelizes its own Markov solves).
func Fig7(rs []float64) map[float64][]hw.DesignPoint {
	fronts, err := parallel.Sweep(context.Background(), len(rs), parallel.Options{},
		func(_ context.Context, i int) ([]hw.DesignPoint, error) {
			return hw.ParetoFront(hw.Sweep(hw.DefaultGrid(rs[i]))), nil
		})
	if err != nil {
		panic(err) // tasks are infallible
	}
	out := make(map[float64][]hw.DesignPoint, len(rs))
	for i, r := range rs {
		out[r] = fronts[i]
	}
	return out
}

// Fig7Ratios is the set of bus scaling ratios plotted in Figure 7.
func Fig7Ratios() []float64 { return []float64{1.0, 1.1, 1.2, 1.3, 1.4, 1.5} }

// Table2Row pairs our computed values with the paper's published ones.
type Table2Row struct {
	R           float64
	B, Q, K     int
	AreaMM2     float64
	MTS         float64
	EnergyNJ    float64
	PaperArea   float64
	PaperMTS    float64
	PaperEnergy float64
}

// Table2 recomputes the paper's Table 2: the optimal design parameter
// sets for R = 1.3 and R = 1.4, with area, combined MTS and energy from
// our models next to the published numbers.
func Table2() []Table2Row {
	published := []Table2Row{
		{R: 1.3, B: 32, Q: 24, K: 48, PaperArea: 13.6, PaperMTS: 5.12e5, PaperEnergy: 11.09},
		{R: 1.3, B: 32, Q: 32, K: 64, PaperArea: 19.4, PaperMTS: 2.34e7, PaperEnergy: 13.26},
		{R: 1.3, B: 32, Q: 48, K: 96, PaperArea: 34.1, PaperMTS: 4.57e10, PaperEnergy: 17.05},
		{R: 1.3, B: 32, Q: 64, K: 128, PaperArea: 53.2, PaperMTS: 6.50e13, PaperEnergy: 21.51},
		{R: 1.4, B: 32, Q: 24, K: 48, PaperArea: 13.6, PaperMTS: 1.14e7, PaperEnergy: 10.79},
		{R: 1.4, B: 32, Q: 32, K: 64, PaperArea: 19.3, PaperMTS: 1.69e9, PaperEnergy: 12.83},
		{R: 1.4, B: 32, Q: 48, K: 96, PaperArea: 34.0, PaperMTS: 3.62e13, PaperEnergy: 16.38},
		{R: 1.4, B: 32, Q: 64, K: 128, PaperArea: 53.0, PaperMTS: 9.75e13, PaperEnergy: 20.54},
	}
	for i := range published {
		row := &published[i]
		p := hw.Params{B: row.B, Q: row.Q, K: row.K, R: row.R}
		row.AreaMM2 = p.AreaMM2()
		row.EnergyNJ = p.EnergyNJ()
		row.MTS = p.MTS()
	}
	return published
}

// Table3 returns the packet buffering comparison rows.
func Table3() []pktbuf.Scheme { return pktbuf.Table3() }

// ReassemblySummary carries the Section 5.4.2 headline numbers.
type ReassemblySummary struct {
	AccessesPerChunk int
	ClockMHz         float64
	ThroughputGbps   float64
	StagingSRAMBytes int
}

// Reassembly computes the Section 5.4.2 numbers: five DRAM accesses per
// 64-byte chunk at a 400 MHz RDRAM clock give ~40 gbps of scanned
// payload, with a 72 KB staging SRAM.
func Reassembly() ReassemblySummary {
	return ReassemblySummary{
		AccessesPerChunk: reassembly.AccessesPerChunk,
		ClockMHz:         400,
		ThroughputGbps:   reassembly.ThroughputGbps(400),
		StagingSRAMBytes: reassembly.StagingSRAMBytes(384),
	}
}

// WriteSeriesTSV prints an x column followed by one column per series.
func WriteSeriesTSV(w io.Writer, xName string, xs []int, series []Series) error {
	cols := []string{xName}
	for _, s := range series {
		cols = append(cols, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, "\t")); err != nil {
		return err
	}
	for i, x := range xs {
		cells := []string{fmt.Sprintf("%d", x)}
		for _, s := range series {
			cells = append(cells, fmt.Sprintf("%.4g", s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, "\t")); err != nil {
			return err
		}
	}
	return nil
}
