package lpm

import (
	"math/rand/v2"
	"testing"

	"repro/internal/core"
)

func newMem(t testing.TB) *core.Controller {
	t.Helper()
	c, err := core.New(core.Config{Banks: 16, QueueDepth: 16, DelayRows: 64, WordBytes: 64, HashSeed: 21})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// refLPM is an independent reference: longest prefix match by scanning
// all inserted prefixes.
type refLPM struct {
	prefixes []struct {
		addr uint32
		len  int
		hop  NextHop
	}
}

func (r *refLPM) insert(addr uint32, length int, hop NextHop) {
	mask := uint32(0)
	if length > 0 {
		mask = ^uint32(0) << (32 - uint(length))
	}
	r.prefixes = append(r.prefixes, struct {
		addr uint32
		len  int
		hop  NextHop
	}{addr & mask, length, hop})
}

func (r *refLPM) lookup(addr uint32) NextHop {
	best, bestLen := NextHop(0), -1
	for _, p := range r.prefixes {
		mask := uint32(0)
		if p.len > 0 {
			mask = ^uint32(0) << (32 - uint(p.len))
		}
		// >= so a re-inserted identical prefix replaces the old route,
		// matching the table's replacement semantics.
		if addr&mask == p.addr && p.len >= bestLen {
			best, bestLen = p.hop, p.len
		}
	}
	return best
}

func buildRandomTable(t testing.TB, mem *core.Controller, nPrefixes int, seed uint64) (*Table, *refLPM) {
	t.Helper()
	table, err := NewTable(mem, 1<<20, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	ref := &refLPM{}
	rng := rand.New(rand.NewPCG(seed, 17))
	for i := 0; i < nPrefixes; i++ {
		addr := rng.Uint32()
		length := 8 + rng.IntN(25) // /8../32, the realistic BGP range
		hop := NextHop(1 + rng.Uint32N(1<<20))
		if err := table.Insert(addr, length, hop); err != nil {
			t.Fatal(err)
		}
		mask := ^uint32(0) << (32 - uint(length))
		ref.insert(addr&mask, length, hop)
	}
	if _, err := table.Sync(); err != nil {
		t.Fatal(err)
	}
	return table, ref
}

func TestShadowMatchesReference(t *testing.T) {
	mem := newMem(t)
	table, ref := buildRandomTable(t, mem, 300, 1)
	rng := rand.New(rand.NewPCG(2, 3))
	for i := 0; i < 3000; i++ {
		addr := rng.Uint32()
		if got, want := table.LookupShadow(addr), ref.lookup(addr); got != want {
			t.Fatalf("shadow lookup %#x = %d want %d", addr, got, want)
		}
	}
}

func TestEngineMatchesShadow(t *testing.T) {
	mem := newMem(t)
	table, ref := buildRandomTable(t, mem, 200, 4)
	engine := NewEngine(table)
	rng := rand.New(rand.NewPCG(5, 6))
	const lookups = 500
	want := make(map[uint64]NextHop, lookups)
	addrs := make(map[uint64]uint32, lookups)
	launched := 0
	got := 0
	check := func(res Result) {
		if res.Hop != want[res.ID] {
			t.Fatalf("lookup %d (%#x): engine %d shadow %d ref %d",
				res.ID, res.Addr, res.Hop, want[res.ID], ref.lookup(addrs[res.ID]))
		}
		got++
	}
	for launched < lookups {
		// Pick addresses half matching existing prefixes, half random.
		var addr uint32
		if launched%2 == 0 && len(ref.prefixes) > 0 {
			p := ref.prefixes[rng.IntN(len(ref.prefixes))]
			addr = p.addr | rng.Uint32()&^(^uint32(0)<<(32-uint(p.len)))
		} else {
			addr = rng.Uint32()
		}
		id := uint64(launched)
		want[id] = table.LookupShadow(addr)
		addrs[id] = addr
		engine.Start(addr, id)
		launched++
		for _, res := range engine.Tick() {
			check(res)
		}
	}
	for _, res := range engine.Drain(10_000_000) {
		check(res)
	}
	if got != lookups {
		t.Fatalf("finished %d of %d lookups", got, lookups)
	}
}

func TestEngineLatencyDeterministic(t *testing.T) {
	mem := newMem(t)
	table, _ := buildRandomTable(t, mem, 50, 7)
	engine := NewEngine(table)
	d := uint64(mem.Delay())
	// One lookup at a time: latency must be exactly reads*D (+1 for the
	// issue/record skew of the engine's cycle accounting).
	for i := 0; i < 20; i++ {
		engine.Start(uint32(i)*2654435761, uint64(i))
		res := engine.Drain(10_000_000)
		if len(res) != 1 {
			t.Fatalf("lookup %d: %d results", i, len(res))
		}
		lat := res[0].EndCycle - res[0].StartCycle
		wantLat := uint64(res[0].NodeReads) * d
		// The engine issues on the same cycle it dequeues, so each level
		// costs exactly D; allow the fixed off-by-one of result stamping.
		if lat != wantLat && lat != wantLat+1 {
			t.Fatalf("lookup %d: latency %d want %d (reads=%d, D=%d)", i, lat, wantLat, res[0].NodeReads, d)
		}
	}
}

func TestEnginePipelining(t *testing.T) {
	// With many lookups in flight the engine must approach one node
	// access per cycle — far better than one lookup per levels*D.
	mem := newMem(t)
	table, _ := buildRandomTable(t, mem, 400, 8)
	engine := NewEngine(table)
	rng := rand.New(rand.NewPCG(9, 10))
	const lookups = 2000
	cycles := 0
	done := 0
	launched := 0
	for done < lookups {
		if launched < lookups {
			engine.Start(rng.Uint32(), uint64(launched))
			launched++
		}
		done += len(engine.Tick())
		cycles++
		if cycles > 100*lookups {
			t.Fatal("pipeline starved")
		}
	}
	_, _, reads, _ := engine.Stats()
	perLookup := float64(cycles) / lookups
	if perLookup > float64(reads)/lookups*1.5+float64(mem.Delay())/lookups*8 {
		t.Fatalf("%.1f cycles per lookup with %.1f reads per lookup: no pipelining", perLookup, float64(reads)/lookups)
	}
}

func TestInsertValidation(t *testing.T) {
	mem := newMem(t)
	table, _ := NewTable(mem, 0, 16)
	if err := table.Insert(0, 33, 1); err == nil {
		t.Error("length 33 accepted")
	}
	if err := table.Insert(0, -1, 1); err == nil {
		t.Error("negative length accepted")
	}
	if err := table.Insert(0, 8, 0); err == nil {
		t.Error("hop 0 accepted")
	}
	if _, err := NewTable(mem, 0, 0); err == nil {
		t.Error("zero maxNodes accepted")
	}
}

func TestTrieRegionExhaustion(t *testing.T) {
	mem := newMem(t)
	table, _ := NewTable(mem, 0, 4)
	var sawErr error
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 100 && sawErr == nil; i++ {
		sawErr = table.Insert(rng.Uint32(), 32, NextHop(i+1))
	}
	if sawErr != ErrNoMemory {
		t.Fatalf("err = %v want ErrNoMemory", sawErr)
	}
}

func TestDefaultRoute(t *testing.T) {
	mem := newMem(t)
	table, _ := NewTable(mem, 0, 1024)
	if err := table.Insert(0, 0, 99); err != nil {
		t.Fatal(err)
	}
	if err := table.Insert(0x0A000000, 8, 7); err != nil { // 10.0.0.0/8
		t.Fatal(err)
	}
	if got := table.LookupShadow(0x0A123456); got != 7 {
		t.Fatalf("10.18.52.86 -> %d want 7", got)
	}
	if got := table.LookupShadow(0xC0A80001); got != 99 {
		t.Fatalf("192.168.0.1 -> %d want default 99", got)
	}
}

func TestOverlappingPrefixesLongestWins(t *testing.T) {
	mem := newMem(t)
	table, _ := NewTable(mem, 0, 4096)
	table.Insert(0x0A000000, 8, 1)  // 10/8
	table.Insert(0x0A0A0000, 16, 2) // 10.10/16
	table.Insert(0x0A0A0A00, 24, 3) // 10.10.10/24
	if _, err := table.Sync(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr uint32
		want NextHop
	}{
		{0x0A000001, 1},
		{0x0A0A0001, 2},
		{0x0A0A0A01, 3},
		{0x0B000000, 0},
	}
	engine := NewEngine(table)
	for i, tc := range cases {
		engine.Start(tc.addr, uint64(i))
	}
	for _, res := range engine.Drain(1_000_000) {
		if res.Hop != cases[res.ID].want {
			t.Fatalf("addr %#x -> %d want %d", res.Addr, res.Hop, cases[res.ID].want)
		}
	}
}

func TestThroughputConstants(t *testing.T) {
	if ThroughputLookupsPerCycle() != 0.125 {
		t.Fatalf("throughput %v want 1/8", ThroughputLookupsPerCycle())
	}
	if LookupLatencyCycles(8, 1004) != 8032 {
		t.Fatal("latency arithmetic")
	}
}
