package core

import (
	"fmt"
	"strings"

	"repro/internal/coded"
)

// StallCounts breaks stalls down by the conditions of Section 4.3,
// plus the coded-mode port-cover stall.
type StallCounts struct {
	DelayBuffer uint64 // no free delay storage buffer row
	BankQueue   uint64 // bank access queue full
	WriteBuffer uint64 // write buffer FIFO full
	Counter     uint64 // redundant-request counter saturated
	Port        uint64 // coded mode: no direct or decode port cover this cycle
}

// Total sums all stall conditions.
func (s StallCounts) Total() uint64 {
	return s.DelayBuffer + s.BankQueue + s.WriteBuffer + s.Counter + s.Port
}

// Stats aggregates everything the controller observed since reset.
type Stats struct {
	// Cycles is the number of interface cycles simulated.
	Cycles uint64
	// MemCycles is the number of memory-bus cycles simulated (~R*Cycles).
	MemCycles uint64
	// Reads and Writes count accepted requests; MergedReads counts the
	// subset of reads that were satisfied by an existing delay storage
	// buffer row without a new DRAM access.
	Reads, Writes, MergedReads uint64
	// Completions counts data words delivered on the interface.
	Completions uint64
	// Stalls counts rejected requests by condition.
	Stalls StallCounts
	// FirstStallCycle is the interface cycle of the first stall, or 0
	// if none has occurred; it is the simulated analogue of the paper's
	// Mean Time to Stall when averaged over seeds.
	FirstStallCycle uint64
	// DRAMAccesses counts accesses issued to the banks; BusBusy counts
	// memory cycles on which some bank issued.
	DRAMAccesses, BusBusy uint64
	// BankRequests histograms accepted requests per bank, for checking
	// the uniformity the hash is supposed to deliver.
	BankRequests []uint64
	// PeakQueueLen and PeakRowsInUse are high-water marks of any bank's
	// access queue and delay storage buffer occupancy.
	PeakQueueLen, PeakRowsInUse int
	// RowOccupancySum accumulates the total delay-storage-buffer rows in
	// use (summed over banks) once per cycle, so RowOccupancySum/Cycles
	// is the time-averaged occupancy. By Little's law it must equal the
	// non-merged read rate times D — an invariant the tests check.
	RowOccupancySum uint64
	// Rekeys counts completed Rekey operations.
	Rekeys uint64
	// Coded is the XOR-parity subsystem's ledger (internal/coded): all
	// zero unless Config.Coded is enabled. Decodes counts reads served
	// by parity reconstruction (they are neither MergedReads nor
	// DSB-row fills); ParityWrites/RMWReads are the write-through
	// amplification accounting.
	Coded coded.Counters
	// ECCCorrected and ECCUncorrectable count DRAM reads whose data came
	// back from the fault/ECC hook corrected or poisoned (zero without a
	// hook). UncorrectableDelivered counts interface completions flagged
	// with ErrUncorrectable; one poisoned row fill can serve several
	// merged completions, so it is >= ECCUncorrectable whenever faults
	// occur.
	ECCCorrected, ECCUncorrectable, UncorrectableDelivered uint64
}

// MeanRowsInUse is the time-averaged number of reserved delay storage
// buffer rows across all banks.
func (s Stats) MeanRowsInUse() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.RowOccupancySum) / float64(s.Cycles)
}

// BusUtilization is the fraction of memory cycles with a bank issue.
func (s Stats) BusUtilization() float64 {
	if s.MemCycles == 0 {
		return 0
	}
	return float64(s.BusBusy) / float64(s.MemCycles)
}

// String renders a compact human-readable report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d mem-cycles=%d reads=%d (merged=%d) writes=%d completions=%d\n",
		s.Cycles, s.MemCycles, s.Reads, s.MergedReads, s.Writes, s.Completions)
	fmt.Fprintf(&b, "dram-accesses=%d bus-utilization=%.3f peak-queue=%d peak-rows=%d\n",
		s.DRAMAccesses, s.BusUtilization(), s.PeakQueueLen, s.PeakRowsInUse)
	fmt.Fprintf(&b, "stalls: total=%d delay-buffer=%d bank-queue=%d write-buffer=%d counter=%d",
		s.Stalls.Total(), s.Stalls.DelayBuffer, s.Stalls.BankQueue, s.Stalls.WriteBuffer, s.Stalls.Counter)
	if s.FirstStallCycle > 0 {
		fmt.Fprintf(&b, " first-stall-cycle=%d", s.FirstStallCycle)
	}
	if s.Stalls.Port > 0 {
		fmt.Fprintf(&b, " coded-port=%d", s.Stalls.Port)
	}
	if s.Coded != (coded.Counters{}) {
		fmt.Fprintf(&b, "\ncoded: decodes=%d decode-reads=%d parity-writes=%d rmw-reads=%d",
			s.Coded.Decodes, s.Coded.DecodeReads, s.Coded.ParityWrites, s.Coded.RMWReads)
	}
	if s.ECCCorrected > 0 || s.ECCUncorrectable > 0 {
		fmt.Fprintf(&b, "\necc: corrected=%d uncorrectable=%d poisoned-completions=%d",
			s.ECCCorrected, s.ECCUncorrectable, s.UncorrectableDelivered)
	}
	return b.String()
}
