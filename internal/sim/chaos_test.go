package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/workload"
)

// chaosCore returns a geometry small enough to stress in a few tens of
// thousands of cycles while still exercising merging and queueing.
func chaosCore() core.Config {
	return core.Config{
		Banks:      8,
		QueueDepth: 8,
		DelayRows:  8,
		WordBytes:  16,
		HashSeed:   0xC0FFEE,
	}
}

// chaosGen draws addresses from a small space so writes and reads
// collide, exercising the model check, with a write-heavy mix.
func chaosGen(seed uint64) workload.Generator {
	return workload.NewUniform(seed, 1<<12, 0.9, 0.3, 16)
}

func mustChaos(t *testing.T, opts ChaosOptions) *ChaosResult {
	t.Helper()
	res, err := RunChaos(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func assertOk(t *testing.T, res *ChaosResult) {
	t.Helper()
	if !res.Ok() {
		t.Fatalf("invariant violations:\n%s", res)
	}
	if res.Sim.Completions == 0 {
		t.Fatal("no reads completed; test is vacuous")
	}
	if res.Sim.DistinctLatencies > 1 {
		t.Fatalf("%d distinct latencies want 1 (fixed D)", res.Sim.DistinctLatencies)
	}
}

func TestChaosSingleBitFaultsCorrected(t *testing.T) {
	// The ISSUE's headline scenario: seeded single-bit faults at a rate
	// well above 1e-4 must leave every invariant intact — exact-D
	// completions, zero undetected corruptions, reconciled counters.
	res := mustChaos(t, ChaosOptions{
		Cycles: 50_000,
		Core:   chaosCore(),
		Fault:  fault.Config{Seed: 42, SingleBitRate: 5e-3},
		Gen:    chaosGen(42),
	})
	assertOk(t, res)
	if res.Fault.InjectedSingle == 0 {
		t.Fatal("no single-bit faults injected; test is vacuous")
	}
	if res.Fault.CorrectedReads != res.Fault.InjectedSingle {
		t.Fatalf("corrected %d != injected %d", res.Fault.CorrectedReads, res.Fault.InjectedSingle)
	}
	if res.Flagged != 0 {
		t.Fatalf("single-bit faults produced %d uncorrectable completions", res.Flagged)
	}
}

func TestChaosDoubleBitFaultsFlagged(t *testing.T) {
	res := mustChaos(t, ChaosOptions{
		Cycles: 50_000,
		Core:   chaosCore(),
		Fault:  fault.Config{Seed: 7, SingleBitRate: 1e-3, DoubleBitRate: 1e-3},
		Gen:    chaosGen(7),
	})
	assertOk(t, res)
	if res.Fault.InjectedDouble == 0 {
		t.Fatal("no double-bit faults injected; test is vacuous")
	}
	if res.Flagged == 0 {
		t.Fatal("double-bit faults never surfaced as flagged completions")
	}
}

func TestChaosStuckBankScrubs(t *testing.T) {
	res := mustChaos(t, ChaosOptions{
		Cycles: 30_000,
		Core:   chaosCore(),
		Fault: fault.Config{
			Seed:      3,
			StuckBits: []fault.StuckBit{{Bank: 2, Bit: 13, Value: true}, {Bank: 5, Bit: 0, Value: false}},
		},
		Gen: chaosGen(3),
	})
	assertOk(t, res)
	if res.Fault.StuckApplied == 0 || res.Fault.Scrubs == 0 {
		t.Fatalf("stuck lines never exercised: %+v", res.Fault)
	}
}

func TestChaosSlowBanksKeepFixedDelay(t *testing.T) {
	// Slow banks inflate occupancy; RunChaos provisions delay headroom
	// via AutoDelayWithSlack, so D stays exact (just larger).
	res := mustChaos(t, ChaosOptions{
		Cycles: 30_000,
		Core:   chaosCore(),
		Fault:  fault.Config{Seed: 9, SlowBankRate: 0.2, SlowBankExtra: 4},
		Gen:    chaosGen(9),
	})
	assertOk(t, res)
	if res.Fault.SlowAccesses == 0 {
		t.Fatal("no slow accesses; test is vacuous")
	}
	base := chaosCore().AutoDelay()
	if lat := res.Sim.LatMin; lat <= uint64(base) {
		t.Fatalf("latency %d does not include slow-bank headroom over base D=%d", lat, base)
	}
}

func TestChaosEveryPolicy(t *testing.T) {
	for _, policy := range []recovery.Policy{
		recovery.RetryNextCycle, recovery.DropWithAccounting, recovery.Backpressure,
	} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := chaosCore()
			cfg.QueueDepth = 2 // provoke real stalls so recovery engages
			cfg.DelayRows = 4
			res := mustChaos(t, ChaosOptions{
				Cycles:   40_000,
				Core:     cfg,
				Fault:    fault.Config{Seed: 11, SingleBitRate: 2e-3},
				Recovery: recovery.Config{Policy: policy, MaxAttempts: 64},
				Gen:      workload.NewUniform(11, 1<<10, 1, 0.3, 16),
			})
			assertOk(t, res)
			if res.Recovery.Stalls.Total() == 0 {
				t.Fatal("no stalls provoked; recovery path untested")
			}
			switch policy {
			case recovery.RetryNextCycle:
				if res.Deferred == 0 {
					t.Fatal("retry policy never deferred")
				}
			case recovery.DropWithAccounting:
				if res.Dropped == 0 {
					t.Fatal("drop policy never dropped")
				}
			}
		})
	}
}

func TestChaosDetectsEscapesWhenECCDisabled(t *testing.T) {
	// Negative control: with ECC off, injected flips must show up as
	// "escaped undetected" violations — proving the harness actually
	// checks data, not just counters.
	res := mustChaos(t, ChaosOptions{
		Cycles: 20_000,
		Core:   chaosCore(),
		Fault:  fault.Config{Seed: 13, SingleBitRate: 5e-3, DisableECC: true},
		Gen:    chaosGen(13),
	})
	if res.Ok() {
		t.Fatal("ECC disabled yet no violations recorded; harness is blind")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v, "escaped undetected") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations lack an escape report:\n%s", res)
	}
	if res.Fault.Escaped == 0 {
		t.Fatal("injector recorded no escapes")
	}
}

func TestChaosDeterministic(t *testing.T) {
	run := func() *ChaosResult {
		return mustChaos(t, ChaosOptions{
			Cycles: 10_000,
			Core:   chaosCore(),
			Fault:  fault.Config{Seed: 21, SingleBitRate: 1e-3, DoubleBitRate: 5e-4},
			Recovery: recovery.Config{
				Policy: recovery.RetryNextCycle,
			},
			Gen: chaosGen(21),
		})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Stats, b.Stats) || a.Fault != b.Fault || a.Recovery != b.Recovery {
		t.Fatalf("chaos runs diverge:\n%v\nvs\n%v", a, b)
	}
	if a.Issued != b.Issued || a.Flagged != b.Flagged {
		t.Fatalf("chaos tallies diverge: %+v vs %+v", a, b)
	}
}

func TestChaosRejectsBadOptions(t *testing.T) {
	if _, err := RunChaos(ChaosOptions{Cycles: 0, Gen: chaosGen(1)}); err == nil {
		t.Fatal("zero cycles accepted")
	}
	if _, err := RunChaos(ChaosOptions{Cycles: 10}); err == nil {
		t.Fatal("nil generator accepted")
	}
	if _, err := RunChaos(ChaosOptions{
		Cycles: 10,
		Gen:    chaosGen(1),
		Fault:  fault.Config{SingleBitRate: 2},
	}); err == nil {
		t.Fatal("invalid fault config accepted")
	}
}
