package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTickParallel/sequential-4   	   20000	      2454 ns/op	         2.675 comps/cycle	       0 B/op	       0 allocs/op
BenchmarkBaselineVsVPNM/vpnm-same-bank-attack   	       1	  83508634 ns/op	         1.000 req/cycle	 3758144 B/op	    4372 allocs/op
PASS
ok  	repro	3.743s
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseStripsProcSuffixAndKeepsAllMetrics(t *testing.T) {
	rep := Report{Benchmarks: map[string]map[string]float64{}}
	if err := parseInto(&rep, strings.NewReader(sample)); err != nil {
		t.Fatal(err)
	}
	seq, ok := rep.Benchmarks["BenchmarkTickParallel/sequential"]
	if !ok {
		t.Fatalf("-4 proc suffix not stripped: %v", rep.Benchmarks)
	}
	for unit, want := range map[string]float64{"ns/op": 2454, "comps/cycle": 2.675, "B/op": 0, "allocs/op": 0} {
		if seq[unit] != want {
			t.Errorf("sequential %s = %g, want %g", unit, seq[unit], want)
		}
	}
	if got := rep.Benchmarks["BenchmarkBaselineVsVPNM/vpnm-same-bank-attack"]["req/cycle"]; got != 1 {
		t.Errorf("req/cycle = %g, want 1", got)
	}
}

func TestGateDirections(t *testing.T) {
	base := `{"benchmarks": {
		"BenchA": {"req/cycle": 1.0, "ns/op": 100},
		"BenchB": {"allocs/op": 0},
		"BenchC": {"allocs/op": 10}
	}}`
	cases := []struct {
		name    string
		current string
		wantBad []string
	}{
		{
			"all-within",
			`{"benchmarks": {"BenchA": {"req/cycle": 0.9}, "BenchB": {"allocs/op": 0}, "BenchC": {"allocs/op": 10}}}`,
			nil,
		},
		{
			// Allocation metrics gate strictly: 10 -> 11 is within the 20%
			// threshold but still fails, because allocs/op is a property
			// of the code, not the machine.
			"alloc-increase-fails-within-threshold",
			`{"benchmarks": {"BenchA": {"req/cycle": 1}, "BenchB": {"allocs/op": 0}, "BenchC": {"allocs/op": 11}}}`,
			[]string{"BenchC allocs/op"},
		},
		{
			// ...and an improvement still passes.
			"alloc-decrease-passes",
			`{"benchmarks": {"BenchA": {"req/cycle": 1}, "BenchB": {"allocs/op": 0}, "BenchC": {"allocs/op": 9}}}`,
			nil,
		},
		{
			"higher-better-regressed",
			`{"benchmarks": {"BenchA": {"req/cycle": 0.5}, "BenchB": {"allocs/op": 0}, "BenchC": {"allocs/op": 10}}}`,
			[]string{"BenchA req/cycle"},
		},
		{
			"zero-alloc-baseline-fails-any-increase",
			`{"benchmarks": {"BenchA": {"req/cycle": 1}, "BenchB": {"allocs/op": 1}, "BenchC": {"allocs/op": 10}}}`,
			[]string{"BenchB allocs/op"},
		},
		{
			"lower-better-regressed",
			`{"benchmarks": {"BenchA": {"req/cycle": 1}, "BenchB": {"allocs/op": 0}, "BenchC": {"allocs/op": 13}}}`,
			[]string{"BenchC allocs/op"},
		},
		{
			"missing-benchmark",
			`{"benchmarks": {"BenchA": {"req/cycle": 1}, "BenchC": {"allocs/op": 10}}}`,
			[]string{"BenchB: benchmark missing"},
		},
		{
			// ns/op has no gate direction: a 10x slowdown must not fail.
			"ns-op-never-gated",
			`{"benchmarks": {"BenchA": {"req/cycle": 1, "ns/op": 1000}, "BenchB": {"allocs/op": 0}, "BenchC": {"allocs/op": 10}}}`,
			nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			failures, err := runGate(
				writeFile(t, "cur.json", tc.current),
				writeFile(t, "base.json", base), 0.20, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			if len(failures) != len(tc.wantBad) {
				t.Fatalf("failures = %v, want %d matching %v", failures, len(tc.wantBad), tc.wantBad)
			}
			for i, want := range tc.wantBad {
				if !strings.Contains(failures[i], want) {
					t.Errorf("failure[%d] = %q, want contains %q", i, failures[i], want)
				}
			}
		})
	}
}

// TestGateStrictBytes: B/op is strict like allocs/op — a 4% creep over
// a nonzero baseline fails even though req/cycle gets 20% slack.
func TestGateStrictBytes(t *testing.T) {
	base := writeFile(t, "base.json", `{"benchmarks": {"BenchD": {"B/op": 100}}}`)
	cur := writeFile(t, "cur.json", `{"benchmarks": {"BenchD": {"B/op": 104}}}`)
	failures, err := runGate(cur, base, 0.20, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchD B/op") {
		t.Fatalf("B/op creep must fail strictly, got %v", failures)
	}
}

// TestGateAbsoluteFloor: a "min:<unit>" baseline key is an absolute
// floor on <unit> — no threshold slack, independent of the relative
// baseline. It protects contracts a benchmark was built to prove: a
// relative gate would let req/cycle decay 20% per baseline refresh, a
// floor cannot be walked down.
func TestGateAbsoluteFloor(t *testing.T) {
	base := `{"benchmarks": {
		"BenchOOO": {"req/cycle": 3.842, "min:req/cycle": 3.5}
	}}`
	cases := []struct {
		name    string
		current string
		wantBad []string
	}{
		{
			// Above the floor but 7% under the relative baseline: the
			// threshold absorbs the drift, the floor holds.
			"above-floor-within-threshold",
			`{"benchmarks": {"BenchOOO": {"req/cycle": 3.6}}}`,
			nil,
		},
		{
			// Within the 20% relative threshold (3.842*0.8 = 3.07) but
			// below the floor: the floor fails it with zero slack.
			"below-floor-fails-despite-threshold",
			`{"benchmarks": {"BenchOOO": {"req/cycle": 3.2}}}`,
			[]string{"BenchOOO req/cycle: 3.2 below absolute floor 3.5"},
		},
		{
			// Exactly at the floor passes: the floor is >=, not >.
			"at-floor-passes-floor",
			`{"benchmarks": {"BenchOOO": {"req/cycle": 3.5}}}`,
			nil,
		},
		{
			// The floored metric missing from the run is a failure — once
			// from the floor, once from the relative gate on the same unit.
			"floored-metric-missing",
			`{"benchmarks": {"BenchOOO": {"ns/op": 1}}}`,
			[]string{"BenchOOO req/cycle: metric missing", "BenchOOO req/cycle: metric missing"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			failures, err := runGate(
				writeFile(t, "cur.json", tc.current),
				writeFile(t, "base.json", base), 0.20, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			if len(failures) != len(tc.wantBad) {
				t.Fatalf("failures = %v, want %d matching %v", failures, len(tc.wantBad), tc.wantBad)
			}
			for i, want := range tc.wantBad {
				if !strings.Contains(failures[i], want) {
					t.Errorf("failure[%d] = %q, want contains %q", i, failures[i], want)
				}
			}
		})
	}
}

// TestGateFloorOnlyBaselineCounts: a baseline whose only gate is a
// floor still gates something — it must not be rejected as useless.
func TestGateFloorOnlyBaselineCounts(t *testing.T) {
	cur := writeFile(t, "cur.json", `{"benchmarks": {"BenchOOO": {"req/cycle": 4.0}}}`)
	base := writeFile(t, "base.json", `{"benchmarks": {"BenchOOO": {"min:req/cycle": 3.5}}}`)
	failures, err := runGate(cur, base, 0.20, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("floor satisfied but gate failed: %v", failures)
	}
}

func TestGateRejectsUselessBaseline(t *testing.T) {
	cur := writeFile(t, "cur.json", `{"benchmarks": {"BenchA": {"ns/op": 1}}}`)
	base := writeFile(t, "base.json", `{"benchmarks": {"BenchA": {"ns/op": 1}}}`)
	if _, err := runGate(cur, base, 0.20, io.Discard); err == nil {
		t.Fatal("baseline with only ungated metrics must error, not silently pass")
	}
}

// TestGateSkipsOnCoreMismatch: a baseline entry carrying a `cores`
// metric is only compared on a host with the same core count; anywhere
// else the whole benchmark is SKIPPED, loudly, instead of gating a
// core-count-dependent number against the wrong machine shape.
func TestGateSkipsOnCoreMismatch(t *testing.T) {
	base := `{"benchmarks": {
		"BenchSpeed": {"cores": 8, "speedup-x": 3.5},
		"BenchA": {"req/cycle": 1.0}
	}}`
	cases := []struct {
		name     string
		current  string
		wantBad  int
		wantSkip string
	}{
		{
			// 4 != 8: a 10x speedup regression must not fail, only skip.
			"mismatch-skips",
			`{"benchmarks": {"BenchSpeed": {"cores": 4, "speedup-x": 0.3}, "BenchA": {"req/cycle": 1}}}`,
			0,
			"SKIPPED (baseline recorded on 8 cores, this run has 4): BenchSpeed",
		},
		{
			// No cores metric in the current run: same treatment.
			"missing-cores-skips",
			`{"benchmarks": {"BenchSpeed": {"speedup-x": 0.3}, "BenchA": {"req/cycle": 1}}}`,
			0,
			"SKIPPED (baseline recorded on 8 cores, this run has no cores metric): BenchSpeed",
		},
		{
			// Matching core count: the speedup gate applies again.
			"match-compares",
			`{"benchmarks": {"BenchSpeed": {"cores": 8, "speedup-x": 0.3}, "BenchA": {"req/cycle": 1}}}`,
			1,
			"",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			failures, err := runGate(
				writeFile(t, "cur.json", tc.current),
				writeFile(t, "base.json", base), 0.20, &out)
			if err != nil {
				t.Fatal(err)
			}
			if len(failures) != tc.wantBad {
				t.Fatalf("failures = %v, want %d", failures, tc.wantBad)
			}
			if tc.wantSkip != "" && !strings.Contains(out.String(), tc.wantSkip) {
				t.Fatalf("gate output %q missing %q", out.String(), tc.wantSkip)
			}
		})
	}
}

// TestGateSkipsSpeedupOnOneCore: even with matching core counts, a
// speedup measured under GOMAXPROCS=1 is scheduler noise — there is
// nothing to fan across — so speedup-x is skipped, mirroring the
// in-tree TestSweepSpeedup's own small-host skip.
func TestGateSkipsSpeedupOnOneCore(t *testing.T) {
	base := `{"benchmarks": {
		"BenchSpeed": {"cores": 1, "speedup-x": 1.5},
		"BenchA": {"req/cycle": 1.0}
	}}`
	cur := `{"benchmarks": {
		"BenchSpeed": {"cores": 1, "speedup-x": 0.5},
		"BenchA": {"req/cycle": 1.0}
	}}`
	var out bytes.Buffer
	failures, err := runGate(writeFile(t, "cur.json", cur), writeFile(t, "base.json", base), 0.20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("one-core speedup must skip, not fail: %v", failures)
	}
	if want := "SKIPPED (speedup needs >=2 cores, this run has 1): BenchSpeed speedup-x"; !strings.Contains(out.String(), want) {
		t.Fatalf("gate output %q missing %q", out.String(), want)
	}
}

// TestDiffTable: -diff renders the union of benchmarks and metrics,
// including ungated ns/op, with per-metric deltas and placeholders for
// values only one side has.
func TestDiffTable(t *testing.T) {
	old := `{"benchmarks": {
		"BenchA": {"ns/op": 1000, "comps/cycle": 2.5},
		"BenchGone": {"ns/op": 7}
	}}`
	cur := `{"benchmarks": {
		"BenchA": {"ns/op": 500, "comps/cycle": 2.5},
		"BenchNew": {"ns/op": 42}
	}}`
	var out bytes.Buffer
	if err := runDiff(writeFile(t, "old.json", old), writeFile(t, "new.json", cur), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"-50.00%", // BenchA ns/op halved
		"~",       // BenchA comps/cycle unchanged
		"—",       // one-sided values render as placeholders
		"n/a",     // ...and their delta is not a number
		"BenchGone", "BenchNew",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
}

// TestGateReportsUnknownBenchmarks: a benchmark the baseline does not
// mention passes the gate but is called out as UNKNOWN, so new
// benchmarks don't run ungated in silence.
func TestGateReportsUnknownBenchmarks(t *testing.T) {
	cur := writeFile(t, "cur.json",
		`{"benchmarks": {"BenchA": {"req/cycle": 1}, "BenchNew": {"req/cycle": 9}}}`)
	base := writeFile(t, "base.json", `{"benchmarks": {"BenchA": {"req/cycle": 1}}}`)
	var out bytes.Buffer
	failures, err := runGate(cur, base, 0.20, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("unknown benchmark must not fail the gate: %v", failures)
	}
	if want := "UNKNOWN (not in baseline): BenchNew"; !strings.Contains(out.String(), want) {
		t.Fatalf("gate output %q missing %q", out.String(), want)
	}
	if strings.Contains(out.String(), "UNKNOWN (not in baseline): BenchA") {
		t.Fatal("baselined benchmark reported as UNKNOWN")
	}
}
